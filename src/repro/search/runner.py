"""Parallel, pruned mapping-space search over real tensors.

This is the evaluation engine behind :func:`search`, :func:`explore`
(the historical serial sweep, now a thin wrapper), and
:func:`explore_cascade` (the paper's named future-work rung: searching a
whole cascade's mappings Einsum by Einsum).

The runner composes three independent pieces:

* **A strategy** (:mod:`repro.search.strategies`) proposes candidate
  batches and sees only float scores back.
* **Parallel evaluation** fans each batch out over the
  ``evaluate_many`` machinery: a thread pool sharing the process-wide
  compile cache and one thread-safe
  :class:`~repro.model.backend.PrepCache` per sweep, or a process pool
  shipping picklable ``(spec, tensors, opset, shapes, metrics)``
  payloads.  An explicit ``executor="process"`` request with
  process-incompatible arguments raises
  :class:`~repro.model.evaluate.ProcessExecutorError`; the
  env-var/default path downgrades to threads with an
  :class:`~repro.model.evaluate.ExecutorDowngradeWarning` naming each
  offender.  Every fan-out runs under a
  :class:`~repro.search.supervisor.SweepSupervisor`: per-candidate
  wall-clock ``timeout``, bounded retry of transient worker failures
  (``max_retries``/``retry_backoff``), broken process pools rebuilt
  once then downgraded to threads, and deterministic spec errors
  recorded on ``SearchResult.failures`` instead of killing the sweep.
  ``journal=path`` checkpoints every priced candidate to a crash-safe
  JSONL journal (plus an atomic ``manifest.json``);
  ``resume=path`` replays the deterministic strategy and adopts every
  journaled result bit-identically, so a killed sweep finishes from
  where it stopped (see :mod:`repro.search.journal`).
* **Two-phase pruning** (``prune_to=k``): every proposed candidate is
  scored first with a cheap fast path, then only the top-k survivors are
  re-priced with the full per-event traced metrics (``metrics="trace"``,
  the reference path) — and only when the spec binds buffers or caches;
  on sink-less specs the cheap phase is already exact
  (:func:`~repro.model.evaluate.counters_priceable`) and phase 2 is
  skipped entirely.  Two surrogates are available via ``prune_metrics``:

  - ``"auto"`` (the default) — the vector/fused kernels.  These are
    *bit-identical* to the traced reference (the conformance suite
    enforces it), so pruning with any ``k >= 1`` provably preserves the
    best candidate; the speedup comes from pricing the non-survivors
    without ever paying the per-event trace.
  - ``"counters-only"`` — the counter-only kernels, which price every
    event as DRAM traffic.  Cheaper still, but *approximate* on
    buffered specs: buffering can reorder candidates, so the true best
    is only guaranteed to survive when ``k`` absorbs the surrogate's
    ranking error.  Use for very large spaces where even the vector
    pass is too slow.
  - ``"analytical"`` — the statistics-based pricing tier
    (:func:`~repro.model.analytical.evaluate_analytical`): no tensor is
    walked at all, candidates are priced from sparsity statistics
    extracted once per sweep.  Orders of magnitude faster than any
    executing surrogate, but approximate *everywhere* (sink-less specs
    included), so phase 2 always re-prices the survivors and the
    exact-survivor guarantee is relaxed to top-k recall: the true best
    survives whenever ``k`` absorbs the documented error bounds (the
    cross-validation suite in ``tests/model/test_analytical.py`` pins
    them).  Scored serially — each candidate prices in well under a
    millisecond, so pool dispatch would cost more than it saves.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from ..einsum.operators import ARITHMETIC, OpSet
from ..fibertree.rankid import rank_of_var
from ..model.backend import (
    CompileCache,
    CompiledBackend,
    PrepCache,
    resolve_backend,
    spec_fingerprint,
)
from ..model.evaluate import (
    EvaluationResult,
    StoreBypassWarning,
    _opset_token,
    _process_one,
    cache_incompatibilities,
    counters_priceable,
    default_workers,
    evaluate,
    resolve_pool_mode,
)
from ..spec.loader import AcceleratorSpec
from .journal import (
    SweepJournal,
    candidate_key,
    strategy_signature,
    workloads_fingerprint,
)
from .results import (
    CascadeSearchResult,
    SearchResult,
    metric_value,
    metrics_fingerprint,
)
from .space import Candidate, MappingSpace, apply_candidate
from .strategies import SearchStrategy, resolve_strategy
from .supervisor import DETERMINISTIC, FailureRecord, SweepSupervisor

#: The approximate (all-DRAM) surrogate for ``prune_metrics``.
CHEAP_METRICS = "counters-only"

#: The metrics mode survivors are re-priced with (the reference path).
FULL_METRICS = "trace"

#: How many consecutive all-duplicate proposal rounds the runner
#: tolerates before concluding a strategy is stuck (its contract allows
#: re-proposing seen candidates, so one stale round is not an error).
MAX_STALE_ROUNDS = 8


def _resolve_einsum(spec: AcceleratorSpec, einsum: Optional[str]) -> str:
    if einsum is not None:
        return einsum
    if len(spec.einsum.cascade) != 1:
        raise ValueError("name the Einsum to explore in a cascade "
                         "(or use explore_cascade to search them all)")
    return spec.einsum.cascade.produced[0]


def _einsum_ranks(spec: AcceleratorSpec, einsum: str) -> List[str]:
    return [rank_of_var(v) for v in spec.einsum.cascade[einsum].all_vars]


class SearchRunner:
    """Evaluates a strategy's candidate batches, in parallel, with
    optional two-phase pruning.  One runner covers one (spec, Einsum,
    tensors) sweep; construction resolves the backend and builds the
    sweep-wide :class:`~repro.model.backend.PrepCache`."""

    def __init__(
        self,
        spec: AcceleratorSpec,
        tensors,
        einsum: Optional[str] = None,
        opset: OpSet = ARITHMETIC,
        opsets=None,
        shapes: Optional[Dict[str, int]] = None,
        energy_model=None,
        backend=None,
        metrics: str = "auto",
        metric: str = "exec_seconds",
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        prune_to: Optional[int] = None,
        prune_metrics: str = "auto",
        prep_cache: Optional[PrepCache] = None,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        journal: Optional[str] = None,
        resume: Optional[str] = None,
        cache=None,
        validate: str = "off",
    ):
        if executor is not None and executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; known: 'thread', 'process'"
            )
        if validate not in ("off", "warn", "strict"):
            raise ValueError(
                f"unknown validate mode {validate!r}; known: 'off', "
                "'warn', 'strict'"
            )
        if prune_to is not None and prune_to < 1:
            raise ValueError("prune_to must be >= 1")
        if journal is not None and resume is not None and journal != resume:
            raise ValueError(
                "journal= and resume= point at different paths; resume "
                "continues journaling in the same directory, so pass only "
                "resume= (or the same path for both)"
            )
        self.spec = spec
        self.tensors = dict(tensors)
        self.einsum = _resolve_einsum(spec, einsum)
        self.opset = opset
        self.opsets = opsets
        self.shapes = shapes
        self.energy_model = energy_model
        self._backend_arg = backend
        self.store = None
        if cache is not None:
            from ..store import resolve_store

            store = resolve_store(cache)
            if backend in (None, "auto"):
                # Store-backed compile cache: a warm sweep (or a cold
                # worker process) skips lowering, not just pricing.
                engine = CompiledBackend(
                    cache=CompileCache(persistent=store), fallback=True,
                )
            else:
                engine = resolve_backend(backend)
            reasons = cache_incompatibilities(opset, opsets, energy_model,
                                              engine)
            if reasons:
                warnings.warn(
                    "cache= was bypassed for this search because the "
                    "arguments cannot be keyed durably: "
                    + "; ".join(reasons),
                    StoreBypassWarning, stacklevel=2,
                )
                self.engine = resolve_backend(backend)
            else:
                self.store = store
                self.engine = engine
        else:
            self.engine = resolve_backend(backend)
        self.metrics = metrics
        self.metric = metric
        self.workers = workers if workers is not None else default_workers()
        self.executor = executor
        self.prune_to = prune_to
        self.prune_metrics = prune_metrics
        self.prep_cache = prep_cache if prep_cache is not None else PrepCache()
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.journal_path = resume if resume is not None else journal
        self.resuming = resume is not None
        self.validate = validate
        self._lint_shapes: Optional[Dict[str, int]] = None
        if validate != "off":
            # The base spec is linted once up front: a strict run rejects
            # a statically-broken spec before the pools even spin up.
            from ..model.evaluate import lint_gate

            lint_gate(spec, tensors=self.tensors, shapes=shapes,
                      validate=validate)
        # Supervision state, owned by run(): one supervisor (and its
        # pools) serves every batch of a search — multi-round strategies
        # would otherwise pay pool spin-up, worker-process imports
        # included, per round.
        self._supervisor: Optional[SweepSupervisor] = None
        self._journal: Optional[SweepJournal] = None
        self._n_adopted = 0
        # Sweep-wide sparsity statistics for the analytical surrogate,
        # extracted lazily (and only once — they are mapping-independent,
        # so every candidate shares them).
        self._workload_stats = None

    # ---- evaluation ---------------------------------------------------
    def _stats(self):
        if self._workload_stats is None:
            from ..model.analytical import WorkloadStats

            self._workload_stats = WorkloadStats.from_tensors(self.tensors)
        return self._workload_stats

    def _shape_hints(self) -> Dict[str, int]:
        """Rank shapes for the feasibility rules: workload tensor shapes
        under any explicit ``shapes=`` overrides."""
        if self._lint_shapes is None:
            merged: Dict[str, int] = {}
            for t in self.tensors.values():
                for rank, span in zip(getattr(t, "rank_ids", ()) or (),
                                      getattr(t, "shape", ()) or ()):
                    if isinstance(span, int) and span > 0:
                        merged.setdefault(str(rank), span)
            if self.shapes:
                merged.update(self.shapes)
            self._lint_shapes = merged
        return self._lint_shapes

    def _statically_infeasible(self, candidate: Candidate) -> bool:
        """Does the cheap error-severity feasibility subset reject this
        candidate's spec?  Only *error* rules vote (warn findings never
        prune), so dropping the candidate cannot change the best: an
        infeasible mapping could not have executed as specified."""
        from ..analysis import feasibility_findings

        cand_spec = apply_candidate(self.spec, self.einsum, candidate)
        return bool(feasibility_findings(cand_spec,
                                         shapes=self._shape_hints()))

    def _evaluate_one(self, candidate: Candidate,
                      metrics: str) -> EvaluationResult:
        cand_spec = apply_candidate(self.spec, self.einsum, candidate)
        if metrics == "analytical":
            return evaluate(cand_spec, None, shapes=self.shapes,
                            energy_model=self.energy_model,
                            metrics="analytical", stats=self._stats())
        return evaluate(cand_spec, dict(self.tensors), opset=self.opset,
                        opsets=self.opsets, shapes=self.shapes,
                        energy_model=self.energy_model, backend=self.engine,
                        metrics=metrics, prep_cache=self.prep_cache,
                        cache=self.store)

    def _adopt_journaled(self, candidates: Sequence[Candidate],
                         phase: int) -> Tuple[Dict[Candidate,
                                                   EvaluationResult],
                                              List[Candidate]]:
        """Split a batch into journal-adopted results and work to run.

        A resumed sweep adopts every journaled completion (unpickling
        the stored result, so metrics are bit-identical to the original
        run) and every journaled *deterministic* failure (re-running a
        poison candidate would fail identically; the failure is
        re-surfaced on this run's ``failures`` instead).  Journaled
        transient failures — timeouts, worker deaths — get a fresh
        chance and land back in the to-run list.
        """
        adopted: Dict[Candidate, EvaluationResult] = {}
        to_run: List[Candidate] = []
        journal = self._journal
        if journal is None or not journal.resumed:
            return adopted, list(candidates)
        for cand in candidates:
            record = journal.lookup(phase, cand)
            if record is None:
                to_run.append(cand)
            elif record["type"] == "result":
                result = journal.unpack(record)
                if result is None:
                    to_run.append(cand)  # journaled without a payload
                else:
                    adopted[cand] = result
            elif record["classification"] == DETERMINISTIC:
                self._supervisor.failures.append(FailureRecord(
                    item=cand, key=candidate_key(cand),
                    kind=record["kind"],
                    classification=record["classification"],
                    error=record["error"], attempts=record["attempts"],
                    phase=phase,
                ))
            else:
                to_run.append(cand)
        return adopted, to_run

    def _evaluate_batch(self, candidates: Sequence[Candidate],
                        metrics: str, phase: int = 1
                        ) -> List[Tuple[Candidate, EvaluationResult]]:
        """Evaluate one batch under supervision, preserving candidate
        order (so parallel and serial sweeps yield bit-identical result
        lists).  Returns completions only — ``(candidate, result)``
        pairs; candidates whose evaluation failed terminally land on the
        supervisor's ``failures`` (and in the journal) instead."""
        supervisor = self._supervisor
        adopted, to_run = self._adopt_journaled(candidates, phase)
        self._n_adopted += len(adopted)

        def on_result(cand, result, attempts) -> None:
            if self._journal is not None:
                self._journal.record_result(
                    phase, cand, metric_value(result, self.metric),
                    metrics_fingerprint(result), result=result,
                )

        def on_failure(record: FailureRecord) -> None:
            record.phase = phase
            if self._journal is not None:
                self._journal.record_failure(
                    phase, record.item, record.kind,
                    record.classification, record.error, record.attempts,
                )

        if metrics == "analytical":
            # Statistics pricing is ~1000x cheaper than an executing
            # surrogate; pool dispatch would dominate the work.
            completed = supervisor.run_serial(
                to_run, lambda c: self._evaluate_one(c, metrics),
                phase=phase, on_result=on_result, on_failure=on_failure,
            )
        else:
            token = _opset_token(self.opset)
            completed = supervisor.run_batch(
                to_run, lambda c: self._evaluate_one(c, metrics),
                payload=lambda c: (
                    (apply_candidate(self.spec, self.einsum, c),
                     self.tensors, token, self.shapes, metrics)
                    if self.store is None else
                    (apply_candidate(self.spec, self.einsum, c),
                     self.tensors, token, self.shapes, metrics,
                     self.store.path)
                ),
                process_worker=_process_one,
                phase=phase, on_result=on_result, on_failure=on_failure,
            )
        if not adopted:
            return completed
        done = dict(completed)
        done.update(adopted)
        return [(c, done[c]) for c in candidates if c in done]

    # ---- the search loop ----------------------------------------------
    def _manifest(self, strategy: SearchStrategy, mode: str,
                  pruning: bool) -> Dict:
        """The sweep's identity (plus audit fields) for the journal."""
        from .. import __version__

        return {
            "spec_fingerprint": spec_fingerprint(self.spec),
            "workloads": workloads_fingerprint(self.tensors),
            "einsum": self.einsum,
            "metric": self.metric,
            "metrics": self.metrics,
            "prune_metrics": self.prune_metrics if pruning else None,
            "prune_to": self.prune_to,
            "strategy": strategy_signature(strategy),
            # Audit-only fields (a resume may legitimately differ here).
            "library_version": __version__,
            "workers": self.workers,
            "executor": mode,
            "timeout": self.timeout,
            "max_retries": self.max_retries,
        }

    def run(self, strategy: SearchStrategy,
            space: MappingSpace) -> SearchResult:
        """Drive one strategy over one space to a ranked result."""
        t_start = time.perf_counter()
        strategy.reset(space)
        pruning = self.prune_to is not None
        phase1_metrics = self.prune_metrics if pruning else self.metrics
        # Resolve the pool policy once per run (raising early when an
        # explicit process request cannot be honored).
        mode = resolve_pool_mode(
            self.executor, self.opset, self.opsets, self.energy_model,
            self._backend_arg,
        ) if self.workers > 1 else "thread"
        self._supervisor = SweepSupervisor(
            workers=self.workers, mode=mode, timeout=self.timeout,
            max_retries=self.max_retries, backoff=self.retry_backoff,
            key=candidate_key,
        )
        self._n_adopted = 0
        if self.journal_path is not None:
            manifest = self._manifest(strategy, mode, pruning)
            if self.resuming:
                self._journal = SweepJournal.resume(self.journal_path,
                                                    manifest)
            else:
                self._journal = SweepJournal.create(self.journal_path,
                                                    manifest)

        scored: List[Tuple[Candidate, EvaluationResult]] = []
        scores: List[Tuple[Candidate, float]] = []
        seen = set()
        stale_rounds = 0
        n_statically_pruned = 0
        try:
            while True:
                proposal = strategy.propose(space, scores)
                if not proposal:
                    break  # the strategy is done
                batch = []
                for cand in proposal:  # dedup across *and* within batches
                    if cand not in seen:
                        seen.add(cand)
                        batch.append(cand)
                if not batch:
                    # Everything proposed was already evaluated.  The
                    # strategy contract allows that ("harmless but
                    # wasted"), so ask again — bounded, in case a
                    # strategy never produces anything new.
                    stale_rounds += 1
                    if stale_rounds >= MAX_STALE_ROUNDS:
                        break
                    continue
                stale_rounds = 0
                if self.validate != "off":
                    # Static feasibility pre-pass: drop candidates an
                    # error-severity lint rule proves cannot execute,
                    # before phase-1 spends anything pricing them.
                    feasible = []
                    for cand in batch:
                        if self._statically_infeasible(cand):
                            n_statically_pruned += 1
                        else:
                            feasible.append(cand)
                    batch = feasible
                    if not batch:
                        continue  # whole round was infeasible; ask again
                for cand, res in self._evaluate_batch(batch, phase1_metrics,
                                                      phase=1):
                    scored.append((cand, res))
                    scores.append((cand, metric_value(res, self.metric)))
            t_phase1 = time.perf_counter()

            n_repriced = 0
            if pruning and scored:
                k = min(self.prune_to, len(scored))
                # Deterministic top-k: ties break on proposal order.
                by_score = sorted(range(len(scored)),
                                  key=lambda i: (scores[i][1], i))
                keep = {scores[i][0] for i in by_score[:k]}
                survivors = [c for c, _ in scored if c in keep]
                if (counters_priceable(self.spec)
                        and phase1_metrics != "analytical"):
                    # No buffers bound: the cheap phase was exact already.
                    # (The analytical surrogate is approximate even then,
                    # so its survivors always get re-priced.)
                    candidates = [(c, r) for c, r in scored if c in keep]
                else:
                    candidates = self._evaluate_batch(survivors,
                                                      FULL_METRICS, phase=2)
                    n_repriced = len(candidates)
            else:
                candidates = scored

            if self._journal is not None:
                if candidates:
                    best_cand, best_res = min(
                        enumerate(candidates),
                        key=lambda ic: (metric_value(ic[1][1], self.metric),
                                        ic[0]),
                    )[1]
                    self._journal.finalize(
                        "complete", best_key=candidate_key(best_cand),
                        fingerprint=metrics_fingerprint(best_res),
                    )
                else:
                    self._journal.finalize("complete")
        except KeyboardInterrupt:
            # The supervisor already drained in-flight futures (their
            # results hit the journal via on_result); mark the journal
            # interrupted so the artifact is self-describing, then let
            # the interrupt propagate.
            if self._journal is not None:
                self._journal.finalize("interrupted")
            raise
        finally:
            supervisor = self._supervisor
            supervisor.close()
            self._supervisor = None
            if self._journal is not None:
                self._journal.close()
                self._journal = None
        t_end = time.perf_counter()

        return SearchResult(
            candidates=candidates,
            scores=scores,
            strategy=strategy.name,
            metric=self.metric,
            pruned_to=self.prune_to,
            stats={
                "seconds": t_end - t_start,
                "phase1_seconds": t_phase1 - t_start,
                "phase2_seconds": t_end - t_phase1,
                "n_scored": len(scored),
                "n_repriced": n_repriced,
                "statically_pruned": n_statically_pruned,
                "workers": self.workers,
                "executor": supervisor.mode,
                "n_retried": supervisor.retries,
                "n_failed": len(supervisor.failures),
                "n_adopted": self._n_adopted,
                "events": list(supervisor.events),
            },
            failures=list(supervisor.failures),
        )


def search(
    spec: AcceleratorSpec,
    tensors,
    einsum: Optional[str] = None,
    strategy="exhaustive",
    tile_sizes: Optional[Dict[str, Sequence[int]]] = None,
    max_loop_orders: Optional[int] = None,
    metric: str = "exec_seconds",
    prune_to: Optional[int] = None,
    prune_metrics: str = "auto",
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    seed: int = 0,
    samples: int = 32,
    beam_width: int = 4,
    opset: OpSet = ARITHMETIC,
    opsets=None,
    shapes: Optional[Dict[str, int]] = None,
    energy_model=None,
    backend=None,
    metrics: str = "auto",
    prep_cache: Optional[PrepCache] = None,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
    cache=None,
    validate: str = "off",
) -> SearchResult:
    """Search one Einsum's mapping space and rank the outcomes.

    ``strategy`` picks the candidate generator: ``"exhaustive"`` (the
    whole space), ``"random"`` (``samples`` seeded draws), ``"beam"``
    (greedy refinement from ``beam_width`` survivors per round), or any
    :class:`~repro.search.strategies.SearchStrategy` instance.

    ``workers``/``executor`` control the parallel candidate evaluation
    (defaults follow :func:`~repro.model.evaluate.default_workers` and
    :func:`~repro.model.evaluate.default_executor`); ``workers=1`` forces
    the serial sweep.  Parallel and serial runs produce bit-identical
    candidate lists and rankings.

    ``prune_to=k`` enables two-phase pruning: every candidate is scored
    with the cheap ``prune_metrics`` fast path (``"auto"`` — the vector
    kernels, bit-identical to the trace so the best provably survives —
    ``"counters-only"``, cheaper but approximate on buffered specs, or
    ``"analytical"``, which prices candidates from sparsity statistics
    alone and needs ``k`` large enough to absorb its documented error
    bounds) and only the best ``k`` are re-priced with the full
    per-event traced metrics; see the module docstring for the contract.
    ``metric`` picks the ranking scalar: ``"exec_seconds"``,
    ``"cycles"``, ``"traffic"``, or ``"energy"``.

    Every run is *supervised*: ``timeout`` bounds each candidate's
    wall-clock evaluation (pooled runs only — the serial path cannot
    preempt itself), transient worker failures retry up to
    ``max_retries`` times with ``retry_backoff``-seconded exponential
    backoff, and deterministic spec errors are recorded on
    ``result.failures`` (never retried) instead of killing the sweep.
    ``journal=path`` writes a crash-safe artifact directory —
    ``manifest.json`` (atomic) plus an append-only ``journal.jsonl``
    checkpointing every priced candidate — and ``resume=path`` picks a
    killed sweep back up, adopting every journaled result bit-identically
    and re-evaluating only what is missing.  See
    :mod:`repro.search.journal` for the layout and the resume-identity
    contract (:class:`~repro.search.journal.ResumeMismatchError`).

    ``cache=dir`` (a directory path or a
    :class:`~repro.store.PersistentStore`) makes the sweep read-through
    and write-through a disk-backed cross-process store: every priced
    candidate is published under its durable key (spec fingerprint +
    tensor content digests + metrics mode + opset + shapes), and a
    re-run of the same sweep — in this process or any other — adopts
    the stored results bit-identically instead of re-evaluating.  With
    the default backend the compile cache is store-backed too, so warm
    sweeps skip lowering.  The journal checkpoints *one sweep's*
    progress; the store is shared across sweeps and processes — they
    compose (a resumed journal run with ``cache=`` fills gaps from the
    store first).  Arguments without a durable key bypass the store
    with a :class:`~repro.model.evaluate.StoreBypassWarning`.

    ``validate`` engages static verification (see
    :func:`~repro.model.evaluate.lint_gate` and
    :mod:`repro.analysis`): the base spec is linted up front
    (``"strict"`` rejects it on error findings, ``"warn"`` warns), and
    every proposed candidate runs through the linter's cheap
    error-severity feasibility subset *before* phase-1 pricing —
    statically-infeasible mappings are dropped without evaluating
    anything, counted in ``result.stats["statically_pruned"]``.  Only
    error rules prune, so the surviving ranking (and the best
    candidate) is bit-identical to an unpruned run.
    """
    runner = SearchRunner(
        spec, tensors, einsum=einsum, opset=opset, opsets=opsets,
        shapes=shapes, energy_model=energy_model, backend=backend,
        metrics=metrics, metric=metric, workers=workers,
        executor=executor, prune_to=prune_to,
        prune_metrics=prune_metrics, prep_cache=prep_cache,
        timeout=timeout, max_retries=max_retries,
        retry_backoff=retry_backoff, journal=journal, resume=resume,
        cache=cache, validate=validate,
    )
    space = MappingSpace.of(_einsum_ranks(spec, runner.einsum),
                            tile_sizes, max_loop_orders)
    strat = resolve_strategy(strategy, seed=seed, samples=samples,
                             beam_width=beam_width)
    return runner.run(strat, space)


def explore(
    spec: AcceleratorSpec,
    tensors,
    einsum: Optional[str] = None,
    tile_sizes: Optional[Dict[str, Sequence[int]]] = None,
    max_loop_orders: Optional[int] = None,
    opset: OpSet = ARITHMETIC,
    backend=None,
    metrics: str = "auto",
) -> SearchResult:
    """Sweep mappings of one Einsum serially and evaluate each on real
    tensors — the historical exhaustive sweep, kept as the simple entry
    point (and for any caller that needs strictly sequential
    evaluation).  :func:`search` is the parallel, pruned superset.

    Each candidate runs through the selected execution ``backend``
    (compiled generated-Python kernels by default) with the given
    ``metrics`` mode (``"auto"`` by default); candidates share the
    process-wide compile cache and one sweep-wide
    :class:`~repro.model.backend.PrepCache`, so re-exploring after a
    workload change pays no lowering cost and candidates agreeing on a
    tensor's storage order reuse one prepared tensor and one arena.
    """
    return search(spec, tensors, einsum=einsum, strategy="exhaustive",
                  tile_sizes=tile_sizes, max_loop_orders=max_loop_orders,
                  opset=opset, backend=backend, metrics=metrics,
                  workers=1)


def explore_cascade(
    spec: AcceleratorSpec,
    tensors,
    tile_sizes: Optional[Dict[str, Sequence[int]]] = None,
    max_loop_orders: Optional[int] = None,
    strategy="exhaustive",
    metric: str = "exec_seconds",
    prune_to: Optional[int] = None,
    prune_metrics: str = "auto",
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    seed: int = 0,
    samples: int = 32,
    beam_width: int = 4,
    opset: OpSet = ARITHMETIC,
    opsets=None,
    shapes: Optional[Dict[str, int]] = None,
    energy_model=None,
    backend=None,
    metrics: str = "auto",
    timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    validate: str = "off",
) -> CascadeSearchResult:
    """Search every Einsum's mapping in cascade (topological) order,
    carrying the best prefix forward — the paper's future-work rung.

    Einsum ``i`` is searched with Einsums ``0..i-1`` pinned to their
    already-chosen best mappings (and later Einsums at the spec's
    original mappings); every candidate is scored on the *whole
    cascade's* metric, so upstream choices that help downstream Einsums
    win.  ``tile_sizes`` applies per rank wherever that rank appears.

    Returns a :class:`~repro.search.results.CascadeSearchResult` whose
    ``spec`` carries every chosen mapping and whose ``best_result`` is
    the full-cascade evaluation under them.
    """
    out = CascadeSearchResult()
    current = spec
    prep_cache = PrepCache()
    for e in spec.einsum.cascade:
        ranks = [rank_of_var(v) for v in e.all_vars]
        ts = {r: sizes for r, sizes in (tile_sizes or {}).items()
              if r in ranks}
        result = search(
            current, tensors, einsum=e.name, strategy=strategy,
            tile_sizes=ts, max_loop_orders=max_loop_orders, metric=metric,
            prune_to=prune_to, prune_metrics=prune_metrics,
            workers=workers, executor=executor,
            seed=seed, samples=samples, beam_width=beam_width, opset=opset,
            opsets=opsets, shapes=shapes, energy_model=energy_model,
            backend=backend, metrics=metrics, prep_cache=prep_cache,
            timeout=timeout, max_retries=max_retries,
            retry_backoff=retry_backoff, validate=validate,
        )
        cand, res = result.best(metric)
        current = apply_candidate(current, e.name, cand)
        out.per_einsum[e.name] = result
        out.best_candidates[e.name] = cand
        out.best_result = res
    out.spec = current
    return out
