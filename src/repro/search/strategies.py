"""Candidate-generation strategies behind one ``SearchStrategy`` interface.

A strategy is a stateful proposer: the runner repeatedly calls
:meth:`SearchStrategy.propose` with everything scored so far (lower is
better) and evaluates whatever comes back, until the strategy returns an
empty batch.  Three built-ins cover the paper-relevant regimes:

* :class:`ExhaustiveSearch` — every candidate, one batch (the historical
  ``repro.explore.explore`` behavior);
* :class:`RandomSearch` — a seeded uniform sample without replacement,
  for spaces too large to enumerate;
* :class:`BeamSearch` — greedy beam refinement: seed with a few
  candidates, then repeatedly expand the current best ``width``
  candidates through one-step neighborhood moves (adjacent loop-rank
  swaps, tile-size ladder steps) until a round stops improving.

Strategies only see candidates and float scores — never metrics modes or
executors — so every strategy composes with the runner's parallel
evaluation and two-phase pruning unchanged.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .space import Candidate, MappingSpace

#: (candidate, score) pairs, lower scores better.
Scored = Sequence[Tuple[Candidate, float]]


class SearchStrategy:
    """Interface: propose candidate batches until satisfied."""

    name = "strategy"

    def reset(self, space: MappingSpace) -> None:
        """Called once before a search begins; clears proposal state."""

    def propose(self, space: MappingSpace, scored: Scored
                ) -> List[Candidate]:
        """The next batch to evaluate; an empty list ends the search.

        ``scored`` holds every previously proposed candidate with its
        score under the search metric (lower is better).  The runner
        deduplicates across batches, so re-proposing a seen candidate is
        harmless but wasted.
        """
        raise NotImplementedError


class ExhaustiveSearch(SearchStrategy):
    """Every candidate of the space, in one deterministic batch."""

    name = "exhaustive"

    def __init__(self):
        self._done = False

    def reset(self, space: MappingSpace) -> None:
        self._done = False

    def propose(self, space: MappingSpace, scored: Scored
                ) -> List[Candidate]:
        if self._done:
            return []
        self._done = True
        return space.all()


class RandomSearch(SearchStrategy):
    """A seeded uniform sample of the space, without replacement."""

    name = "random"

    def __init__(self, samples: int = 32, seed: int = 0):
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.samples = samples
        self.seed = seed
        self._done = False

    def reset(self, space: MappingSpace) -> None:
        self._done = False

    def propose(self, space: MappingSpace, scored: Scored
                ) -> List[Candidate]:
        if self._done:
            return []
        self._done = True
        return space.sample(self.samples, random.Random(self.seed))


class BeamSearch(SearchStrategy):
    """Greedy beam refinement over loop orders and tile sizes.

    Round zero seeds the beam with the space's natural candidate (the
    declared rank order, untiled) plus ``init - 1`` random candidates.
    Every later round takes the best ``width`` candidates scored so far
    and proposes their unvisited one-step neighbors
    (:meth:`MappingSpace.neighbors`).  The search stops when a round
    yields no new candidates, when ``patience`` consecutive rounds fail
    to improve the best score, or after ``max_rounds`` rounds.
    """

    name = "beam"

    def __init__(self, width: int = 4, init: int = 8, seed: int = 0,
                 max_rounds: Optional[int] = 16, patience: int = 1):
        if width < 1:
            raise ValueError("width must be >= 1")
        if init < 1:
            raise ValueError("init must be >= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.width = width
        self.init = init
        self.seed = seed
        self.max_rounds = max_rounds
        self.patience = patience
        self.reset(None)

    def reset(self, space: Optional[MappingSpace]) -> None:
        self._round = 0
        self._proposed: set = set()
        self._best: Optional[float] = None
        self._stale = 0

    def _seed_batch(self, space: MappingSpace) -> List[Candidate]:
        batch = [space.make(space.ranks, {})]
        rng = random.Random(self.seed)
        for cand in space.sample(self.init, rng):
            if cand not in batch:
                batch.append(cand)
        return batch[:self.init]

    def propose(self, space: MappingSpace, scored: Scored
                ) -> List[Candidate]:
        if self.max_rounds is not None and self._round >= self.max_rounds:
            return []
        if self._round == 0:
            self._round += 1
            batch = self._seed_batch(space)
            self._proposed.update(batch)
            return batch
        best_now = min((s for _, s in scored), default=None)
        if best_now is not None:
            if self._best is not None and best_now >= self._best:
                self._stale += 1
                if self._stale >= self.patience:
                    return []
            else:
                self._stale = 0
            self._best = best_now
        beam = [c for c, _ in sorted(scored, key=lambda cs: cs[1])]
        batch: List[Candidate] = []
        for cand in beam[:self.width]:
            for neighbor in space.neighbors(cand):
                if neighbor not in self._proposed:
                    self._proposed.add(neighbor)
                    batch.append(neighbor)
        self._round += 1
        return batch


def resolve_strategy(strategy, seed: int = 0, samples: int = 32,
                     beam_width: int = 4) -> SearchStrategy:
    """Resolve a strategy argument: an instance or a name.

    Names build defaults parameterized by the keyword arguments:
    ``"exhaustive"``, ``"random"`` (``samples``, ``seed``), ``"beam"``
    (``beam_width``, ``seed``).
    """
    if isinstance(strategy, SearchStrategy):
        return strategy
    if strategy == "exhaustive":
        return ExhaustiveSearch()
    if strategy == "random":
        return RandomSearch(samples=samples, seed=seed)
    if strategy == "beam":
        return BeamSearch(width=beam_width, seed=seed)
    raise ValueError(
        f"unknown search strategy {strategy!r}; known: 'exhaustive', "
        "'random', 'beam', or a SearchStrategy instance"
    )
