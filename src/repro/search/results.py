"""Result containers for mapping-space search.

:class:`ExplorationResult` keeps its historical (`repro.explore`) shape —
a list of ``(Candidate, EvaluationResult)`` pairs with ranking helpers —
and :class:`SearchResult` extends it with what a strategy-driven,
possibly pruned run adds: the phase-1 surrogate scores, the strategy
name, and run statistics.  :class:`CascadeSearchResult` collects one
:class:`SearchResult` per Einsum of a cascade sweep.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..model.evaluate import EvaluationResult
from .space import Candidate


def metric_value(res: EvaluationResult, metric: str) -> float:
    """Extract one scalar search metric from an evaluation result."""
    if metric == "exec_seconds":
        return res.exec_seconds
    if metric == "cycles":
        return res.exec_cycles
    if metric == "traffic":
        return res.traffic_bytes()
    if metric == "energy":
        return res.energy_pj
    raise ValueError(f"unknown metric {metric!r}")


def metrics_fingerprint(res: EvaluationResult) -> str:
    """A hex digest over every modeled metric of one evaluation.

    Hashes the exact bit patterns (``float.hex``) of execution time,
    DRAM traffic, and energy, plus the sorted action counts — the
    quantities the bit-identical contracts of this codebase are stated
    over.  Two results fingerprint equal iff an assertion-by-assertion
    comparison of those metrics would pass, which is what resumed-sweep
    and parallel-vs-serial identity checks need in one scalar.
    """
    h = hashlib.sha256()
    h.update(float(res.exec_seconds).hex().encode())
    h.update(float(res.traffic_bytes()).hex().encode())
    h.update(float(res.energy_pj).hex().encode())
    for action, n in sorted(res.action_counts().items()):
        h.update(action.encode())
        h.update(float(n).hex().encode())
    return h.hexdigest()


@dataclass
class ExplorationResult:
    """Ranked outcomes of a mapping sweep."""

    candidates: List[Tuple[Candidate, EvaluationResult]] = field(
        default_factory=list
    )

    def _metric(self, res: EvaluationResult, metric: str) -> float:
        return metric_value(res, metric)

    def ranked(self, metric: str = "exec_seconds"):
        return sorted(self.candidates,
                      key=lambda pair: self._metric(pair[1], metric))

    def best(self, metric: str = "exec_seconds"):
        if not self.candidates:
            raise ValueError("no candidates evaluated")
        return self.ranked(metric)[0]

    def to_table(self, metric: str = "exec_seconds",
                 top: Optional[int] = None) -> str:
        """A quick ranking dump: one row per candidate, best first.

        Columns: rank, the sort metric, cycles, DRAM traffic (bytes),
        energy (pJ), and the candidate's mapping description.
        """
        rows = self.ranked(metric)
        if top is not None:
            rows = rows[:top]
        header = (f"{'#':>3}  {metric:>14}  {'cycles':>12}  "
                  f"{'traffic_B':>12}  {'energy_pJ':>14}  mapping")
        lines = [header, "-" * len(header)]
        for k, (cand, res) in enumerate(rows, 1):
            lines.append(
                f"{k:>3}  {self._metric(res, metric):>14.6g}  "
                f"{res.exec_cycles:>12.6g}  {res.traffic_bytes():>12.6g}  "
                f"{res.energy_pj:>14.6g}  {cand.describe()}"
            )
        return "\n".join(lines)


@dataclass
class SearchResult(ExplorationResult):
    """Outcome of one strategy-driven search over one Einsum's mappings.

    ``candidates`` holds only the *fully priced* candidates (every
    candidate when the run did not prune; the top-k survivors when it
    did), so :meth:`best`/:meth:`ranked` always compare exact metrics
    against exact metrics.  ``scores`` records the phase-1 surrogate
    score of everything the strategy proposed, in proposal order.
    ``failures`` records candidates that could not be priced under a
    supervised run (:class:`~repro.search.supervisor.FailureRecord`
    entries: poison candidates, exhausted retries, timeouts) — empty on
    unsupervised runs, which still raise on the first error.
    """

    scores: List[Tuple[Candidate, float]] = field(default_factory=list)
    strategy: str = "exhaustive"
    metric: str = "exec_seconds"
    pruned_to: Optional[int] = None
    stats: Dict[str, float] = field(default_factory=dict)
    failures: List = field(default_factory=list)

    @property
    def n_scored(self) -> int:
        """How many candidates the strategy proposed (phase 1)."""
        return len(self.scores)

    @property
    def n_priced(self) -> int:
        """How many candidates got full (exact) metrics (phase 2)."""
        return len(self.candidates)

    def ranked_scores(self) -> List[Tuple[Candidate, float]]:
        """Phase-1 scores, best (lowest) first."""
        return sorted(self.scores, key=lambda cs: cs[1])


@dataclass
class CascadeSearchResult:
    """Per-Einsum search results of a cascade sweep, best prefix carried
    forward in cascade (topological) order."""

    per_einsum: Dict[str, SearchResult] = field(default_factory=dict)
    best_candidates: Dict[str, Candidate] = field(default_factory=dict)
    spec: Optional[object] = None  # the spec with every best mapping applied
    best_result: Optional[EvaluationResult] = None

    def best(self) -> Dict[str, Candidate]:
        return dict(self.best_candidates)

    def to_table(self, metric: str = "exec_seconds") -> str:
        """One ranking block per Einsum, in cascade order."""
        blocks = []
        for name, result in self.per_einsum.items():
            blocks.append(f"== {name} ==")
            blocks.append(result.to_table(metric=metric))
        return "\n".join(blocks)
