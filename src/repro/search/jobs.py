"""Leased batch jobs: a sweep sharded across independent processes.

:func:`search` parallelizes one sweep *inside* one process; this module
turns a sweep into an on-disk **job directory** that any number of
unrelated worker processes — different shells, different machines on a
shared filesystem — chew through cooperatively and crash-safely:

* :func:`submit` enumerates the mapping space deterministically, splits
  the candidates round-robin into ``shards`` shard files, and writes the
  job manifest plus a checksummed pickled payload (spec + tensors +
  evaluation parameters).  Everything is committed write-temp →
  ``fsync`` → ``os.replace``, so a job directory is never observed
  half-submitted.
* :func:`claim` hands a worker the next available shard under an
  advisory ``flock`` on ``claim.lock``: done shards are skipped, live
  leases are respected, and a lease whose heartbeat is older than
  ``lease_ttl`` is **expired and re-claimed** — a worker that died
  mid-shard (kill -9, OOM, lost machine) never strands its shard.
* :class:`ShardClaim` is the worker's side of the lease: it heartbeats
  between candidates, appends one checksummed JSONL record per priced
  candidate (the journal record schema, plus a per-line digest), and
  commits an atomic done marker when the shard is exhausted.  Records
  already on disk — its own from a previous life, or a presumed-dead
  predecessor's — are adopted, not recomputed.
* :func:`poll` summarizes progress; :func:`gather` assembles the
  finished job into a :class:`~repro.search.results.SearchResult`
  **bit-identical** to what a serial in-process ``search()`` over the
  same space would return (results travel as pickled payloads, exactly
  like journal resume adoption).

Two workers can transiently hold one shard — lease takeover is by
timeout, and the presumed-dead worker may still be running.  That is
safe by construction rather than prevented: every evaluation is
deterministic (both writers compute bit-identical results), every
result line carries its own checksum (a torn or interleaved line is
detected and dropped, then recomputed or supplied by the other
writer's copy), and the loader deduplicates by candidate key.  The
``cache=`` store (shared with :func:`search`; see :mod:`repro.store`)
plugs in underneath so duplicated work degrades to a cache hit.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..einsum.operators import NAMED_OPSETS
from ..model.backend import spec_fingerprint
from ..model.evaluate import evaluate
from ..model.executor import fault_point
from ..spec.loader import AcceleratorSpec
from ..store.persistent import (
    PayloadVersionError,
    _FileLock,
    read_entry,
    entry_meta,
    write_entry,
)
from .journal import (
    FORMAT_VERSION,
    PICKLE_PROTOCOL,
    JournalError,
    _pack_result,
    _unpack_result,
    candidate_from_json,
    candidate_key,
    candidate_to_json,
    workloads_fingerprint,
)
from .results import SearchResult, metric_value, metrics_fingerprint
from .runner import _einsum_ranks, _resolve_einsum
from .space import Candidate, MappingSpace, apply_candidate

MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.bin"

#: Default seconds without a heartbeat before a lease counts as
#: abandoned and the shard becomes claimable again.
DEFAULT_LEASE_TTL = 30.0


class JobError(JournalError):
    """A job directory is missing, malformed, or used inconsistently."""


def _atomic_json(path: str, obj: Any, fsync: bool = True) -> None:
    """Commit a JSON file atomically (write-temp + fsync + replace)."""
    tmp = path + f".tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    fault_point(f"jobs-commit:{os.path.basename(path)}")
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[Any]:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError:
        # Atomically committed files are never half-written; treat any
        # unparsable file as absent (a stamped-on lease mid-replace on
        # a non-POSIX filesystem, at worst) rather than crashing.
        return None


def _record_line(record: Dict[str, Any]) -> str:
    """One self-verifying JSONL line: the record plus its own digest."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return json.dumps({"r": record, "sha": digest},
                      sort_keys=True, separators=(",", ":")) + "\n"


def _parse_line(line: bytes) -> Optional[Dict[str, Any]]:
    """The verified record of one line, or None (torn / interleaved)."""
    try:
        wrapper = json.loads(line.decode("utf-8"))
        record = wrapper["r"]
        body = json.dumps(record, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
        return None
    if digest != wrapper.get("sha"):
        return None
    return record


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


# ----------------------------------------------------------------------
# Submit
# ----------------------------------------------------------------------
def submit(
    path: str,
    spec: AcceleratorSpec,
    tensors,
    einsum: Optional[str] = None,
    tile_sizes=None,
    max_loop_orders: Optional[int] = None,
    shards: int = 4,
    metric: str = "exec_seconds",
    metrics: str = "auto",
    opset=None,
    shapes: Optional[Dict[str, int]] = None,
    cache: Optional[str] = None,
) -> Dict[str, Any]:
    """Create a job directory at ``path`` and return its manifest.

    The mapping space of ``einsum`` (resolved exactly as in
    :func:`~repro.search.runner.search`) is enumerated deterministically
    and split round-robin into ``shards`` shard files — candidate ``i``
    lands in shard ``i % shards``, so shards are balanced and the
    original enumeration order is recoverable from (shard, position).
    ``opset`` must be a *named* opset (or None for arithmetic): workers
    rebuild it by name, exactly like the process-pool payloads.
    ``cache`` (a directory path) is recorded in the manifest; every
    worker then routes its evaluations through that shared
    :class:`~repro.store.PersistentStore`.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    from ..model.evaluate import _opset_token
    from ..einsum.operators import ARITHMETIC

    ops = ARITHMETIC if opset is None else opset
    token = _opset_token(ops)
    if token is None:
        raise JobError(
            "submit() requires a named opset (repro.einsum.operators."
            "NAMED_OPSETS): workers rebuild the opset by name"
        )
    name = _resolve_einsum(spec, einsum)
    space = MappingSpace.of(_einsum_ranks(spec, name), tile_sizes,
                            max_loop_orders)
    candidates = list(space.all())
    if not candidates:
        raise JobError("the mapping space is empty; nothing to submit")

    os.makedirs(path, exist_ok=True)
    for sub in ("shards", "leases", "results", "done"):
        os.makedirs(os.path.join(path, sub), exist_ok=True)

    shard_lists: List[List[Candidate]] = [[] for _ in range(shards)]
    for i, cand in enumerate(candidates):
        shard_lists[i % shards].append(cand)
    shard_ids = []
    for sid, cands in enumerate(shard_lists):
        if not cands:
            continue  # more shards than candidates
        shard_ids.append(sid)
        _atomic_json(
            os.path.join(path, "shards", f"shard-{sid:04d}.json"),
            {"shard": sid,
             "candidates": [candidate_to_json(c) for c in cands]},
        )

    blob = pickle.dumps(
        {"spec": spec, "tensors": dict(tensors)},
        protocol=PICKLE_PROTOCOL,
    )
    write_entry(
        os.path.join(path, PAYLOAD_NAME + ".tmp"),
        os.path.join(path, PAYLOAD_NAME),
        blob,
        entry_meta(blob, protocol=PICKLE_PROTOCOL),
    )

    manifest = {
        "format_version": FORMAT_VERSION,
        "pickle_protocol": PICKLE_PROTOCOL,
        "spec_fingerprint": spec_fingerprint(spec),
        "workloads": workloads_fingerprint(dict(tensors)),
        "einsum": name,
        "metric": metric,
        "metrics": metrics,
        "opset": token,
        "shapes": shapes,
        "cache": cache,
        "shards": shard_ids,
        "n_candidates": len(candidates),
    }
    _atomic_json(os.path.join(path, MANIFEST_NAME), manifest)
    # Touch the claim lock file so claimants need no create race.
    with open(os.path.join(path, "claim.lock"), "ab"):
        pass
    return manifest


def _load_manifest(path: str) -> Dict[str, Any]:
    manifest = _read_json(os.path.join(path, MANIFEST_NAME))
    if manifest is None:
        raise JobError(
            f"no job manifest at {os.path.join(path, MANIFEST_NAME)!r}; "
            "the directory was not written by submit()"
        )
    stamped = manifest.get("pickle_protocol")
    if stamped is not None and stamped > pickle.HIGHEST_PROTOCOL:
        raise PayloadVersionError(
            f"the job at {path!r} pickled its payloads with protocol "
            f"{stamped}, but this Python supports at most protocol "
            f"{pickle.HIGHEST_PROTOCOL}; run workers on the Python "
            "version that submitted the job"
        )
    return manifest


# ----------------------------------------------------------------------
# Poll
# ----------------------------------------------------------------------
@dataclass
class JobStatus:
    """A point-in-time summary of one job directory."""

    shards_total: int
    shards_done: int
    shards_leased: int
    shards_open: int
    candidates_total: int
    candidates_done: int

    @property
    def done(self) -> bool:
        return self.shards_done == self.shards_total


def poll(path: str, lease_ttl: float = DEFAULT_LEASE_TTL,
         clock=time.time) -> JobStatus:
    """Summarize a job's progress (done / live-leased / open shards).

    ``clock`` is the wall-clock source leases are judged against —
    injectable so tests expire leases without sleeping.
    """
    manifest = _load_manifest(path)
    now = clock()
    done = leased = candidates_done = 0
    for sid in manifest["shards"]:
        if os.path.exists(os.path.join(path, "done", f"shard-{sid:04d}")):
            done += 1
        else:
            lease = _read_json(
                os.path.join(path, "leases", f"shard-{sid:04d}.lease"))
            if lease is not None and now - lease["heartbeat"] < lease_ttl:
                leased += 1
        candidates_done += len(_shard_results(path, sid))
    total = len(manifest["shards"])
    return JobStatus(
        shards_total=total, shards_done=done, shards_leased=leased,
        shards_open=total - done - leased,
        candidates_total=manifest["n_candidates"],
        candidates_done=candidates_done,
    )


def _shard_results(path: str, sid: int) -> Dict[str, Dict[str, Any]]:
    """Verified records of one shard, deduplicated by candidate key.

    First record wins on duplicates — a takeover race appends the same
    deterministic result twice at worst.  Torn or interleaved lines
    fail their checksum and are dropped (the surviving writer, or the
    next claimant, re-supplies them).
    """
    out: Dict[str, Dict[str, Any]] = {}
    try:
        fh = open(os.path.join(path, "results", f"shard-{sid:04d}.jsonl"),
                  "rb")
    except FileNotFoundError:
        return out
    with fh:
        for line in fh:
            record = _parse_line(line)
            if record is not None and record["key"] not in out:
                out[record["key"]] = record
    return out


# ----------------------------------------------------------------------
# Claim / the worker side
# ----------------------------------------------------------------------
@dataclass
class ShardClaim:
    """A worker's lease on one shard: heartbeat, record, complete."""

    path: str
    shard: int
    worker: str
    epoch: int
    candidates: List[Candidate]
    done_keys: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    clock: Any = time.time

    @property
    def pending(self) -> List[Candidate]:
        """Candidates of this shard not yet recorded on disk."""
        return [c for c in self.candidates
                if candidate_key(c) not in self.done_keys]

    def heartbeat(self) -> None:
        """Re-stamp the lease so it stays live past ``lease_ttl``."""
        _atomic_json(
            os.path.join(self.path, "leases",
                         f"shard-{self.shard:04d}.lease"),
            {"worker": self.worker, "epoch": self.epoch,
             "heartbeat": self.clock()},
            fsync=False,  # a lost heartbeat only risks a takeover
        )

    def record(self, cand: Candidate, result, score: float) -> None:
        """Append one priced candidate (checksummed, flushed whole)."""
        record = {
            "type": "result",
            "phase": 1,
            "key": candidate_key(cand),
            "candidate": candidate_to_json(cand),
            "score": score,
            "fingerprint": metrics_fingerprint(result),
            "payload": _pack_result(result),
            "worker": self.worker,
            "epoch": self.epoch,
        }
        fault_point(f"jobs-record:shard-{self.shard:04d}")
        with open(os.path.join(self.path, "results",
                               f"shard-{self.shard:04d}.jsonl"),
                  "ab") as fh:
            fh.write(_record_line(record).encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())
        self.done_keys[record["key"]] = record

    def record_failure(self, cand: Candidate, error: str) -> None:
        record = {
            "type": "failure",
            "phase": 1,
            "key": candidate_key(cand),
            "candidate": candidate_to_json(cand),
            "error": error,
            "worker": self.worker,
            "epoch": self.epoch,
        }
        with open(os.path.join(self.path, "results",
                               f"shard-{self.shard:04d}.jsonl"),
                  "ab") as fh:
            fh.write(_record_line(record).encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())
        self.done_keys[record["key"]] = record

    def complete(self) -> None:
        """Commit the shard's done marker (idempotent)."""
        _atomic_json(
            os.path.join(self.path, "done", f"shard-{self.shard:04d}"),
            {"worker": self.worker, "epoch": self.epoch,
             "n": len(self.done_keys)},
        )


def claim(path: str, worker: Optional[str] = None,
          lease_ttl: float = DEFAULT_LEASE_TTL,
          clock=time.time) -> Optional[ShardClaim]:
    """Claim the next available shard, or None when none is claimable.

    Claim decisions serialize on an advisory ``flock`` over
    ``claim.lock``, so two racing claimants never adopt the same shard
    *simultaneously*.  A shard is claimable when it has no done marker
    and either no lease or a lease whose last heartbeat is older than
    ``lease_ttl`` seconds by ``clock`` — the stale lease is overwritten
    with a fresh one at the next epoch (the takeover is visible in the
    shard's records).  The dead worker is *presumed* dead, not fenced:
    should it wake up and keep appending, checksummed dup-tolerant
    records keep the shard consistent (see the module docstring).
    """
    manifest = _load_manifest(path)
    if worker is None:
        worker = default_worker_id()
    with _FileLock(os.path.join(path, "claim.lock")):
        now = clock()
        for sid in manifest["shards"]:
            if os.path.exists(os.path.join(path, "done",
                                           f"shard-{sid:04d}")):
                continue
            lease_path = os.path.join(path, "leases",
                                      f"shard-{sid:04d}.lease")
            lease = _read_json(lease_path)
            if lease is not None and now - lease["heartbeat"] < lease_ttl:
                continue  # live lease held by someone else
            epoch = (lease["epoch"] + 1) if lease else 1
            _atomic_json(lease_path, {"worker": worker, "epoch": epoch,
                                      "heartbeat": now})
            shard = _read_json(os.path.join(path, "shards",
                                            f"shard-{sid:04d}.json"))
            if shard is None:
                raise JobError(
                    f"shard file for shard {sid} is missing or corrupt "
                    f"in {path!r}"
                )
            return ShardClaim(
                path=path, shard=sid, worker=worker, epoch=epoch,
                candidates=[candidate_from_json(c)
                            for c in shard["candidates"]],
                done_keys=_shard_results(path, sid),
                clock=clock,
            )
    return None


def _job_payload(path: str):
    _meta, blob = read_entry(os.path.join(path, PAYLOAD_NAME))
    return pickle.loads(blob)


def run_worker(path: str, worker: Optional[str] = None,
               lease_ttl: float = DEFAULT_LEASE_TTL,
               clock=time.time, max_shards: Optional[int] = None) -> int:
    """Claim and complete shards until the job has none left to give.

    The drain loop of one worker process: claim a shard, evaluate its
    pending candidates (heartbeating after every candidate, so a live
    worker on a slow candidate is never mistaken for a dead one between
    candidates), append each result, commit the done marker, repeat.
    Already-recorded candidates — from this worker's previous life or a
    predecessor whose lease expired — are adopted, never recomputed.
    Returns the number of shards this call completed.  ``max_shards``
    bounds the loop (tests claim one shard at a time with it).
    """
    manifest = _load_manifest(path)
    payload = _job_payload(path)
    spec, tensors = payload["spec"], payload["tensors"]
    einsum = manifest["einsum"]
    opset = NAMED_OPSETS[manifest["opset"]]
    shapes = manifest["shapes"]
    metrics = manifest["metrics"]
    metric = manifest["metric"]
    cache = manifest.get("cache")
    if cache is not None:
        from ..model.evaluate import _worker_store

        store, engine = _worker_store(cache)
    else:
        store = engine = None
    completed = 0
    while max_shards is None or completed < max_shards:
        shard_claim = claim(path, worker, lease_ttl=lease_ttl, clock=clock)
        if shard_claim is None:
            break
        for cand in shard_claim.pending:
            cand_spec = apply_candidate(spec, einsum, cand)
            try:
                result = evaluate(
                    cand_spec, dict(tensors), opset=opset, shapes=shapes,
                    metrics=metrics, backend=engine, cache=store,
                )
            except Exception as exc:  # recorded, not fatal to the shard
                shard_claim.record_failure(cand, f"{type(exc).__name__}: "
                                                 f"{exc}")
            else:
                shard_claim.record(cand, result,
                                   metric_value(result, metric))
            shard_claim.heartbeat()
        shard_claim.complete()
        completed += 1
    return completed


# ----------------------------------------------------------------------
# Gather
# ----------------------------------------------------------------------
def gather(path: str, strict: bool = True) -> SearchResult:
    """Assemble a finished job into a ranked
    :class:`~repro.search.results.SearchResult`.

    Results are re-interleaved into the original enumeration order
    (candidate ``i`` came from position ``i // shards`` of shard
    ``i % shards``), and every evaluation payload is unpickled exactly
    as journal resume adoption does — so the gathered result is
    bit-identical (metrics fingerprints included) to a serial
    in-process ``search()`` over the same space.  With ``strict=True``
    (the default) an unfinished job raises :class:`JobError`; pass
    ``strict=False`` to gather a partial snapshot mid-flight.
    """
    manifest = _load_manifest(path)
    status = poll(path)
    if strict and not status.done:
        raise JobError(
            f"job at {path!r} is not finished ({status.shards_done}/"
            f"{status.shards_total} shards done); run more workers or "
            "gather(strict=False) for a partial snapshot"
        )
    # Round-robin inverse: candidate i of the original enumeration sits
    # at position i // n_shards of shard i % n_shards (the non-empty
    # shard ids are dense by construction, whatever shard count was
    # requested at submit time).
    n_shards = len(manifest["shards"])
    shard_cands: Dict[int, List[Candidate]] = {}
    shard_records: Dict[int, Dict[str, Dict[str, Any]]] = {}
    for sid in manifest["shards"]:
        shard = _read_json(os.path.join(path, "shards",
                                        f"shard-{sid:04d}.json"))
        if shard is None:
            raise JobError(f"shard file for shard {sid} is missing or "
                           f"corrupt in {path!r}")
        shard_cands[sid] = [candidate_from_json(c)
                            for c in shard["candidates"]]
        shard_records[sid] = _shard_results(path, sid)

    candidates = []
    scores = []
    failures: List[Dict[str, Any]] = []
    for i in range(manifest["n_candidates"]):
        sid = manifest["shards"][i % n_shards]
        cand = shard_cands[sid][i // n_shards]
        record = shard_records[sid].get(candidate_key(cand))
        if record is None:
            continue  # unfinished (strict=False) or torn tail
        if record["type"] == "failure":
            failures.append(record)
            continue
        result = _unpack_result(record["payload"])
        candidates.append((cand, result))
        scores.append((cand, record["score"]))
    return SearchResult(
        candidates=candidates,
        scores=scores,
        strategy="jobs",
        metric=manifest["metric"],
        pruned_to=None,
        stats={
            "shards": status.shards_total,
            "n_scored": len(candidates),
            "n_failed": len(failures),
        },
        failures=failures,
    )
