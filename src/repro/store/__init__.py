"""Persistent, cross-process caching: the durable half of
evaluation-as-a-service.

:class:`PersistentStore` is a disk-backed cache directory shared by any
number of worker processes: compiled-kernel IR and fully priced
evaluation results survive process exit, kills mid-write, corrupt
entries, and concurrent writers (see :mod:`repro.store.persistent` for
the durability contract).  Opt in per call with ``cache=dir`` on
:func:`repro.model.evaluate.evaluate`,
:func:`repro.model.evaluate.evaluate_many`, and
:func:`repro.search.search`; the leased batch job runner
(:mod:`repro.search.jobs`) shares one store across its workers the same
way.
"""

from .persistent import (
    MISS,
    STORE_FORMAT_VERSION,
    CorruptEntryError,
    PayloadVersionError,
    PersistentStore,
    StoreError,
    StoreStats,
    entry_meta,
    read_entry,
    resolve_store,
    write_entry,
)

__all__ = [
    "MISS",
    "STORE_FORMAT_VERSION",
    "CorruptEntryError",
    "PayloadVersionError",
    "PersistentStore",
    "StoreError",
    "StoreStats",
    "entry_meta",
    "read_entry",
    "resolve_store",
    "write_entry",
]
