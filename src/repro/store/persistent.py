"""A crash-safe, cross-process persistent store for compiled kernels
and priced evaluation results.

Every cache this library had before this module — the compile cache,
the prep cache, the priceability memo — lives and dies with one
process.  A service answering sweep traffic from many worker processes
needs the expensive artifacts (lowered IR, fully priced
:class:`~repro.model.evaluate.EvaluationResult` objects) to outlive any
one of them, survive kills at any instruction, and stay correct when
several writers race on one key.  :class:`PersistentStore` is that
layer, with the durability discipline stated up front:

* **Atomic commits.**  Every entry is written to a private temp file,
  flushed and ``fsync``-ed, then published with :func:`os.replace` —
  the only filesystem step readers can observe.  A kill at *any* point
  of a write leaves either the previous entry or no entry, never a
  half-written one at the published path.

* **Self-verifying entries.**  Each entry carries a fixed magic, a
  length-prefixed JSON meta header (payload length, SHA-256 checksum,
  pickle protocol, library and store-format versions), then the
  payload.  Reads verify magic, length, and checksum before unpickling
  a byte.

* **Corruption is quarantined, never fatal.**  A torn, truncated, or
  bit-flipped entry (external truncation, a torn write from a
  non-atomic producer, disk rot) is moved into ``quarantine/`` and
  reported as a miss — the caller recomputes and the store heals by
  overwriting.  The quarantined bytes stay on disk for post-mortems.

* **Concurrent writers are safe.**  ``put`` takes a striped advisory
  ``flock``; a writer that finds a valid entry already published
  *adopts* it — returning the stored value instead of its own, exactly
  the ``setdefault`` semantics of the in-memory
  :class:`~repro.model.backend.CompileCache` — so every process
  converges on one winner per key.  Even without the lock (an NFS mount
  that ignores flock), ``os.replace`` keeps the last writer's complete
  entry; both writers computed bit-identical payloads, so either
  winning is correct.

* **Version mismatches miss cleanly.**  An entry stamped by a
  different library version is a miss (results could legitimately
  differ across versions), not an error.  An entry whose pickle
  protocol this interpreter cannot read raises the named
  :class:`PayloadVersionError` instead of an opaque unpickle crash.

The two concrete uses are **kernels** (lowered
:class:`~repro.ir.nodes.LoopNestIR` per canonical spec key — a hit
skips lowering, the dominant cost of a cold compile) and **results**
(pickled evaluation results keyed on the full semantic fingerprint of
``(spec, workload contents, metrics mode, opset, shapes)``).  The
result key hashes tensor *contents*, not just shapes, so a hit is
guaranteed to reproduce the exact result a cold run would compute —
the bit-identity-on-hit contract the differential suite enforces.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..model.executor import fault_point

#: Store layout version; bump on incompatible entry/layout changes.
STORE_FORMAT_VERSION = 1

#: Fixed magic prefix of every entry file.
ENTRY_MAGIC = b"RPSTORE1"

#: The pickle protocol used to *fingerprint* tensors (fixed, so keys
#: stay stable across interpreter versions; payloads themselves use
#: ``pickle.HIGHEST_PROTOCOL`` and stamp it in their header).
FINGERPRINT_PICKLE_PROTOCOL = 4

#: Sentinel distinguishing "no entry" from a stored ``None``.
MISS = object()

_META_LEN = struct.Struct(">Q")


class StoreError(ValueError):
    """The persistent store is missing, malformed, or misused."""


class CorruptEntryError(StoreError):
    """An entry failed its magic/length/checksum verification.

    Raised internally and handled by quarantining; it only escapes to
    callers using the low-level :func:`read_entry` directly.
    """


class PayloadVersionError(StoreError):
    """A stored payload cannot be decoded by this interpreter/library.

    Raised (naming the stamped and supported versions) when an entry or
    journal was written with a pickle protocol newer than this
    interpreter supports — the one mismatch that cannot be handled as a
    clean miss-and-recompute, because the bytes are unreadable rather
    than merely stale.
    """


# ----------------------------------------------------------------------
# Entry codec
# ----------------------------------------------------------------------
def entry_meta(payload: bytes, *, protocol: int,
               extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The self-describing header stored in front of ``payload``."""
    from .. import __version__

    meta = {
        "format_version": STORE_FORMAT_VERSION,
        "library_version": __version__,
        "pickle_protocol": protocol,
        "length": len(payload),
        "checksum": hashlib.sha256(payload).hexdigest(),
    }
    if extra:
        meta.update(extra)
    return meta


def write_entry(tmp_path: str, final_path: str, payload: bytes,
                meta: Dict[str, Any], fsync: bool = True) -> None:
    """Commit one entry: temp write + fsync + :func:`os.replace`.

    The caller owns ``tmp_path`` (it must be unique to this writer, on
    the same filesystem as ``final_path``).  A crash before the replace
    leaves only temp garbage; after it, the complete entry.
    """
    header = json.dumps(meta, sort_keys=True,
                        separators=(",", ":")).encode("utf-8")
    with open(tmp_path, "wb") as fh:
        fh.write(ENTRY_MAGIC)
        fh.write(_META_LEN.pack(len(header)))
        fh.write(header)
        fh.write(payload)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    fault_point(f"store-commit:{os.path.basename(final_path)}")
    os.replace(tmp_path, final_path)


def read_entry(path: str) -> Tuple[Dict[str, Any], bytes]:
    """Read and verify one entry; raises :class:`CorruptEntryError` on
    any magic/header/length/checksum failure and
    :class:`PayloadVersionError` when the stamped pickle protocol is
    unreadable here."""
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CorruptEntryError(f"unreadable store entry {path!r}: {exc}")
    pos = len(ENTRY_MAGIC)
    if blob[:pos] != ENTRY_MAGIC:
        raise CorruptEntryError(
            f"store entry {path!r} lacks the {ENTRY_MAGIC!r} magic "
            "(torn write or foreign file)"
        )
    if len(blob) < pos + _META_LEN.size:
        raise CorruptEntryError(f"store entry {path!r} truncated in header")
    (meta_len,) = _META_LEN.unpack(blob[pos:pos + _META_LEN.size])
    pos += _META_LEN.size
    if len(blob) < pos + meta_len:
        raise CorruptEntryError(f"store entry {path!r} truncated in header")
    try:
        meta = json.loads(blob[pos:pos + meta_len].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise CorruptEntryError(
            f"store entry {path!r} has an unparsable meta header"
        )
    pos += meta_len
    payload = blob[pos:]
    if len(payload) != meta.get("length"):
        raise CorruptEntryError(
            f"store entry {path!r} is torn: header promises "
            f"{meta.get('length')} payload bytes, file holds {len(payload)}"
        )
    checksum = hashlib.sha256(payload).hexdigest()
    if checksum != meta.get("checksum"):
        raise CorruptEntryError(
            f"store entry {path!r} fails its checksum "
            f"(stored {meta.get('checksum')!r}, computed {checksum!r})"
        )
    protocol = meta.get("pickle_protocol", 0)
    if protocol > pickle.HIGHEST_PROTOCOL:
        raise PayloadVersionError(
            f"store entry {path!r} was written with pickle protocol "
            f"{protocol}, but this interpreter supports at most "
            f"{pickle.HIGHEST_PROTOCOL}; re-run under the Python that "
            "wrote the store, or clear it"
        )
    return meta, payload


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class StoreStats:
    """Counters of one store handle's traffic (per process, not global)."""

    __slots__ = ("hits", "misses", "puts", "adopted",
                 "corrupt_quarantined", "version_misses")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.adopted = 0
        self.corrupt_quarantined = 0
        self.version_misses = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"StoreStats({body})"


#: Number of flock stripes ``put`` serializes on (per namespace).
LOCK_STRIPES = 64


class PersistentStore:
    """One cache directory shared by any number of processes.

    Layout (all paths under the store root)::

        objects/<namespace>/<key[:2]>/<key>.bin   committed entries
        tmp/<pid>-<seq>.tmp                       in-flight writes
        quarantine/<namespace>-<key>.<n>          corrupt entries, kept
        locks/<namespace>-<stripe>.lock           advisory flock files

    Handles are cheap and independent; every durability property holds
    across handles, threads, and processes (see the module docstring).
    ``fsync=False`` trades the power-failure guarantee for speed —
    process-crash safety is unaffected (the kernel still has the bytes)
    — mirroring the journal's ``fsync_every`` policy.
    """

    def __init__(self, path: str, fsync: bool = True):
        self.path = str(path)
        self.fsync = fsync
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._seq = 0
        #: id(tensor) -> (pin, content digest): workload tensors are
        #: fingerprinted once per store handle, not once per evaluation.
        self._tensor_fps: Dict[int, Tuple[Any, str]] = {}
        for sub in ("objects", "tmp", "quarantine", "locks"):
            os.makedirs(os.path.join(self.path, sub), exist_ok=True)
        self._reap_stale_temps()

    # ---- paths --------------------------------------------------------
    def _entry_path(self, namespace: str, key: str) -> str:
        return os.path.join(self.path, "objects", namespace, key[:2],
                            f"{key}.bin")

    def _temp_path(self) -> str:
        with self._lock:
            self._seq += 1
            seq = self._seq
        return os.path.join(self.path, "tmp", f"{os.getpid()}-{seq}.tmp")

    def _reap_stale_temps(self) -> None:
        """Remove in-flight files of writers that no longer exist.

        Temp names embed the writer's pid; a temp whose pid is dead is
        an abandoned write (the commit never happened, so no reader
        ever saw it) and can be deleted safely.  Live writers' temps
        are left alone.
        """
        tmp_dir = os.path.join(self.path, "tmp")
        try:
            names = os.listdir(tmp_dir)
        except OSError:
            return
        for name in names:
            pid_part = name.split("-", 1)[0]
            try:
                pid = int(pid_part)
            except ValueError:
                continue
            if pid == os.getpid():
                continue
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                try:
                    os.remove(os.path.join(tmp_dir, name))
                except OSError:
                    pass
            except OSError:
                continue  # exists (or unknowable): leave it

    # ---- locking ------------------------------------------------------
    def _stripe_lock(self, namespace: str, key: str):
        stripe = int(key[:8], 16) % LOCK_STRIPES if key else 0
        return _FileLock(os.path.join(
            self.path, "locks", f"{namespace}-{stripe:02d}.lock"
        ))

    # ---- quarantine ---------------------------------------------------
    def _quarantine(self, namespace: str, key: str, path: str,
                    reason: str) -> None:
        """Move a corrupt entry aside (first writer wins; a concurrent
        quarantiner finding the entry already gone is a no-op)."""
        qdir = os.path.join(self.path, "quarantine")
        for n in range(1000):
            target = os.path.join(qdir, f"{namespace}-{key}.{n}")
            if os.path.exists(target):
                continue
            try:
                os.replace(path, target)
            except FileNotFoundError:
                return  # someone else quarantined (or overwrote) it
            except OSError:
                break
            with self._lock:
                self.stats.corrupt_quarantined += 1
            try:
                with open(target + ".reason", "w", encoding="utf-8") as fh:
                    fh.write(reason + "\n")
            except OSError:
                pass
            return
        # Quarantine dir full/unwritable: delete rather than crash-loop.
        try:
            os.remove(path)
        except OSError:
            pass

    # ---- core get/put -------------------------------------------------
    def get(self, namespace: str, key: str) -> Any:
        """The stored value, or :data:`MISS`.

        Corrupt entries are quarantined and miss; entries from another
        library version miss (the caller recomputes and overwrites);
        unreadable pickle protocols raise :class:`PayloadVersionError`.
        """
        from .. import __version__

        path = self._entry_path(namespace, key)
        if not os.path.exists(path):
            with self._lock:
                self.stats.misses += 1
            return MISS
        try:
            meta, payload = read_entry(path)
        except PayloadVersionError:
            raise
        except CorruptEntryError as exc:
            self._quarantine(namespace, key, path, str(exc))
            with self._lock:
                self.stats.misses += 1
            return MISS
        if (meta.get("library_version") != __version__
                or meta.get("format_version") != STORE_FORMAT_VERSION):
            with self._lock:
                self.stats.version_misses += 1
                self.stats.misses += 1
            return MISS
        try:
            value = pickle.loads(payload)
        except Exception as exc:
            # Checksummed bytes that still fail to unpickle were written
            # by an incompatible library state; treat as a version miss.
            self._quarantine(namespace, key, path,
                             f"checksummed payload failed to unpickle: "
                             f"{exc!r}")
            with self._lock:
                self.stats.version_misses += 1
                self.stats.misses += 1
            return MISS
        with self._lock:
            self.stats.hits += 1
        return value

    def put(self, namespace: str, key: str, value: Any) -> Any:
        """Publish ``value`` under ``key``; returns the adopted winner.

        Under the stripe lock, a valid committed entry wins over this
        write (``setdefault`` semantics): the stored value is returned
        so every racing process converges on one object graph.  With an
        invalid/absent entry this writer commits and wins.
        """
        fault_point(f"store-put:{namespace}/{key}")
        with self._stripe_lock(namespace, key):
            existing = self.get(namespace, key)
            if existing is not MISS:
                with self._lock:
                    self.stats.adopted += 1
                return existing
            path = self._entry_path(namespace, key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            meta = entry_meta(payload,
                              protocol=pickle.HIGHEST_PROTOCOL,
                              extra={"namespace": namespace, "key": key})
            write_entry(self._temp_path(), path, payload, meta,
                        fsync=self.fsync)
            with self._lock:
                self.stats.puts += 1
            return value

    def get_or_put(self, namespace: str, key: str, compute) -> Any:
        value = self.get(namespace, key)
        if value is not MISS:
            return value
        return self.put(namespace, key, compute())

    # ---- kernel store (CompileCache persistent layer) ----------------
    def kernel_key(self, spec) -> str:
        from ..model.backend import spec_cache_key

        return hashlib.sha256(
            repr(spec_cache_key(spec)).encode("utf-8")
        ).hexdigest()

    def get_kernels(self, spec) -> Optional[List]:
        """Lowered IR units for a spec, or None.  Duck-typed for
        :class:`~repro.model.backend.CompileCache`, which re-compiles
        kernels from the IR (compilation is cheap; lowering is not)."""
        value = self.get("kernels", self.kernel_key(spec))
        return None if value is MISS else value

    def put_kernels(self, spec, irs: List) -> None:
        self.put("kernels", self.kernel_key(spec), list(irs))

    def invalidate_kernels(self, spec, reason: str) -> None:
        """Quarantine a spec's stored kernels (e.g. a checksum-valid
        entry whose IR failed structural verification).  Without this,
        ``put``'s setdefault semantics would re-adopt the bad entry
        forever."""
        key = self.kernel_key(spec)
        path = self._entry_path("kernels", key)
        with self._stripe_lock("kernels", key):
            if os.path.exists(path):
                self._quarantine("kernels", key, path, reason)

    # ---- result store -------------------------------------------------
    def tensor_fingerprint(self, tensor) -> str:
        """A content digest of one workload tensor (memoized by object
        identity, pinned so ids can never be recycled mid-sweep)."""
        ident = id(tensor)
        with self._lock:
            entry = self._tensor_fps.get(ident)
            if entry is not None:
                return entry[1]
        digest = hashlib.sha256(
            pickle.dumps(tensor, protocol=FINGERPRINT_PICKLE_PROTOCOL)
        ).hexdigest()
        with self._lock:
            self._tensor_fps.setdefault(ident, (tensor, digest))
        return digest

    def result_key(self, spec, tensors: Dict[str, Any], metrics: str,
                   opset_token: Optional[str],
                   shapes: Optional[Dict[str, int]]) -> str:
        """The full semantic key of one evaluation.

        Covers everything that can change the result: the spec's full
        fingerprint (every layer, via
        :func:`~repro.model.backend.spec_fingerprint`), each input
        tensor's *content* digest, the metrics mode (``counters-only``
        is approximate, so modes never share entries), the opset, and
        explicit shape overrides.  Hits are therefore bit-identical to
        a cold run by construction.
        """
        from ..model.backend import spec_fingerprint

        h = hashlib.sha256()
        h.update(spec_fingerprint(spec).encode())
        for name in sorted(tensors):
            h.update(name.encode())
            h.update(self.tensor_fingerprint(tensors[name]).encode())
        h.update(metrics.encode())
        h.update(repr(opset_token).encode())
        h.update(repr(sorted((shapes or {}).items())).encode())
        return h.hexdigest()

    def get_result(self, key: str) -> Any:
        return self.get("results", key)

    def put_result(self, key: str, result) -> Any:
        return self.put("results", key, result)


class _FileLock:
    """A context-managed advisory ``flock`` on one lock file."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[io.BufferedWriter] = None

    def __enter__(self):
        import fcntl

        self._fh = open(self.path, "ab")
        fcntl.flock(self._fh, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc):
        import fcntl

        if self._fh is not None:
            fcntl.flock(self._fh, fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None
        return False


def resolve_store(cache) -> Optional[PersistentStore]:
    """Resolve a ``cache=`` argument: None, a directory path, or a
    :class:`PersistentStore` instance."""
    if cache is None:
        return None
    if isinstance(cache, PersistentStore):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return PersistentStore(os.fspath(cache))
    raise TypeError(
        f"cannot resolve a persistent store from {type(cache).__name__}; "
        "pass a directory path or a PersistentStore"
    )
