"""Iterative driver for vertex-centric algorithms (paper section 8).

Runs one cascade evaluation per iteration until the active set empties,
executing the real Einsum cascades on fibertrees through the TeAAL
executor, and pricing each iteration with the shared Graphicionado
parameterization: per-stream processing/apply throughput against memory
bandwidth, bottleneck-style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fibertree import Fiber, Tensor
from ..model import execute_cascade
from .designs import Design, GraphicionadoConfig
from .vcp import graphdyns_cascade, graphicionado_cascade, opset_for


@dataclass
class IterationStats:
    """Work and cost of one vertex-centric iteration."""

    active: int
    edges_processed: int
    messages: int  # vertices receiving updates (|R|)
    modified: int  # vertices whose property changed (|A1|)
    apply_ops: int
    traffic_bytes: float
    seconds: float


@dataclass
class RunResult:
    """A complete vertex-centric run of one design on one graph."""

    design: str
    algorithm: str
    properties: Dict[int, float]
    iterations: List[IterationStats] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(it.seconds for it in self.iterations)

    @property
    def total_apply_ops(self) -> int:
        return sum(it.apply_ops for it in self.iterations)

    @property
    def total_traffic_bytes(self) -> float:
        return sum(it.traffic_bytes for it in self.iterations)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)


def _vector(name: str, values: Dict[int, float], shape: int) -> Tensor:
    coords = sorted(values)
    return Tensor(name, [name if name in ("S",) else "V"],
                  Fiber(coords, [values[c] for c in coords]), [shape])


def _vector_named(name: str, rank: str, values: Dict[int, float],
                  shape: int) -> Tensor:
    coords = sorted(values)
    return Tensor(name, [rank], Fiber(coords, [values[c] for c in coords]),
                  [shape])


# Properties are stored with a +1 offset so a zero *distance* (the source)
# is distinguishable from an *absent* value — sparse fibertrees elide empty
# payloads.  Both BFS (hop + 1) and SSSP (+ weight) relaxations commute
# with the shift, so the encoded run is exact; distances decode at the end.
_ENCODE = 1.0


def run_vertex_centric(
    design: Design,
    graph: Tensor,
    source: int,
    algorithm: str = "bfs",
    config: GraphicionadoConfig = GraphicionadoConfig(),
    max_iterations: int = 100,
) -> RunResult:
    """Run BFS/SSSP on ``graph`` (adjacency G[d, s]) under one design."""
    opset = opset_for(algorithm)
    uses_weight = algorithm != "bfs"
    n = graph.shape[0] or (
        max(c for point, _ in graph.leaves() for c in point) + 1
    )
    spec = (
        graphicionado_cascade()
        if design.cascade == "graphicionado"
        else graphdyns_cascade()
    )
    g = graph.copy(name="G")
    g.rank_ids = ["V", "S"]  # destination rank aligned to the property space

    if algorithm == "cc":
        # Connected components: every vertex starts active with its own
        # (encoded) id as the component label; `source` is ignored.
        properties = {v: v + _ENCODE for v in range(n)}
        active = dict(properties)
    else:
        properties = {source: _ENCODE}
        active = {source: _ENCODE}
    result = RunResult(design=design.name, algorithm=algorithm,
                       properties={})

    for _ in range(max_iterations):
        if not active:
            break
        tensors = {
            "G": g,
            "A0": _vector_named("A0", "S", active, n),
            "P0": _vector_named("P0", "V", properties, n),
        }
        env = execute_cascade(spec, tensors, opset=opset,
                              shapes={"V": n, "S": n})
        messages = env["R"].points()
        if design.cascade == "graphicionado":
            new_props = {p[0]: v for p, v in env["P1"].leaves()}
        else:
            # Driver-side merge of the filtered property updates (the
            # paper's in-place P0 write + P1 = P0 alias).
            new_props = dict(properties)
            for (v,), value in env["PU"].leaves():
                new_props[v] = value
        new_active = {p[0]: v for p, v in env["A1"].leaves()}

        edges = env["SO"].nnz
        modified_ids = [p[0] for p in messages]
        apply_ops = design.apply_ops(n, modified_ids)
        stats = _price_iteration(
            design, config, uses_weight,
            active=len(active), edges=edges, messages=len(messages),
            modified=len(new_active), apply_ops=apply_ops, n=n,
        )
        result.iterations.append(stats)

        properties = new_props
        active = new_active

    result.properties = {v: d - _ENCODE for v, d in properties.items()}
    return result


def _price_iteration(design, config, uses_weight, active, edges, messages,
                     modified, apply_ops, n) -> IterationStats:
    edge_bytes = edges * design.edge_bytes(uses_weight, config)
    # Frontier reads + message writes.
    msg_bytes = (active + messages) * config.property_bytes
    apply_bytes = apply_ops * config.property_bytes
    traffic = edge_bytes + msg_bytes + apply_bytes

    processing_cycles = max(edges, 1) / config.streams
    apply_cycles = max(apply_ops, 1) / config.streams
    compute_seconds = (processing_cycles + apply_cycles) / config.clock_hz
    memory_seconds = traffic / (config.bandwidth_gbps * 1e9)
    seconds = max(compute_seconds, memory_seconds)
    return IterationStats(
        active=active,
        edges_processed=edges,
        messages=messages,
        modified=modified,
        apply_ops=apply_ops,
        traffic_bytes=traffic,
        seconds=seconds,
    )
