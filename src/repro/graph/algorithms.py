"""Reference graph algorithms for validating the vertex-centric cascades.

Plain-Python BFS and Dijkstra over the adjacency fibertree; the
vertex-centric runs must produce identical distance maps.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict

from ..fibertree import Tensor


def _out_edges(graph: Tensor) -> Dict[int, list]:
    """source -> [(dest, weight)] from an adjacency tensor G[d, s]."""
    out: Dict[int, list] = {}
    for (d, s), w in graph.leaves():
        out.setdefault(s, []).append((d, w))
    return out


def reference_bfs(graph: Tensor, source: int) -> Dict[int, float]:
    """Hop counts from ``source`` for every reachable vertex."""
    adj = _out_edges(graph)
    dist = {source: 0.0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, _ in adj.get(u, ()):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def reference_sssp(graph: Tensor, source: int) -> Dict[int, float]:
    """Dijkstra shortest-path distances from ``source``."""
    adj = _out_edges(graph)
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, float("inf")):
            continue
        for v, w in adj.get(u, ()):
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
