"""Vertex-centric graph accelerators (paper section 8, Figures 12-13)."""

from .algorithms import reference_bfs, reference_sssp
from .designs import (
    DESIGNS,
    GRAPHDYNS,
    GRAPHICIONADO,
    PROPOSAL,
    Design,
    GraphicionadoConfig,
)
from .driver import IterationStats, RunResult, run_vertex_centric
from .vcp import (
    ALGORITHM_OPSETS,
    graphdyns_cascade,
    graphicionado_cascade,
    opset_for,
)

__all__ = [
    "ALGORITHM_OPSETS",
    "DESIGNS",
    "Design",
    "GRAPHDYNS",
    "GRAPHICIONADO",
    "GraphicionadoConfig",
    "IterationStats",
    "PROPOSAL",
    "RunResult",
    "graphdyns_cascade",
    "graphicionado_cascade",
    "opset_for",
    "reference_bfs",
    "reference_sssp",
    "run_vertex_centric",
]
