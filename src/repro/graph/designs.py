"""The three vertex-centric accelerator designs of the Figure 13 study.

All three share Graphicionado's hardware parameterization (Table 5) so the
comparison is apples-to-apples; they differ exactly where the paper says
they differ:

* **Graphicionado** [14] — edge-list graph format (source id re-read per
  edge, weight always read) and a dense apply phase touching *every*
  vertex each iteration.
* **GraphDynS-like** [53] — CSR format (no source-id re-reads; weight read
  only when the algorithm uses it) and a 256-partition bitmap apply: any
  partition holding a modified vertex is eagerly loaded and applied whole.
* **Our Proposal** — removes the partitioning: properties are loaded and
  applied only for the vertices actually modified, while keeping the CSR
  format optimization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class GraphicionadoConfig:
    """Table 5: Graphicionado's parameterization, shared by all designs."""

    clock_hz: float = 1.0e9
    streams: int = 8
    bandwidth_gbps: float = 68.0
    edram_bytes: int = 64 * 1024 * 1024
    vertex_id_bytes: int = 4
    weight_bytes: int = 4
    property_bytes: int = 8


@dataclass(frozen=True)
class Design:
    """One vertex-centric design point."""

    name: str
    cascade: str  # 'graphicionado' | 'graphdyns'
    graph_format: str  # 'edge-list' | 'csr'
    apply_granularity: str  # 'all' | 'partition' | 'exact'
    bitmap_partitions: int = 256

    def edge_bytes(self, uses_weight: bool,
                   cfg: GraphicionadoConfig) -> int:
        """Bytes read from memory per processed edge."""
        if self.graph_format == "edge-list":
            # (src id, dst id, weight) per edge, weight always present.
            return 2 * cfg.vertex_id_bytes + cfg.weight_bytes
        # CSR: dst id per edge (+ weight only if the algorithm uses it).
        return cfg.vertex_id_bytes + (cfg.weight_bytes if uses_weight else 0)

    def apply_ops(self, num_vertices: int, modified) -> int:
        """Apply operations performed this iteration.

        ``modified`` is the iterable of vertex ids receiving updates.
        """
        modified = list(modified)
        if self.apply_granularity == "all":
            return num_vertices
        if self.apply_granularity == "partition":
            part = max(1, math.ceil(num_vertices / self.bitmap_partitions))
            touched = {v // part for v in modified}
            return min(num_vertices, len(touched) * part)
        return len(modified)


GRAPHICIONADO = Design(
    name="Graphicionado",
    cascade="graphicionado",
    graph_format="edge-list",
    apply_granularity="all",
)

GRAPHDYNS = Design(
    name="GraphDynS-like",
    cascade="graphdyns",
    graph_format="csr",
    apply_granularity="partition",
)

PROPOSAL = Design(
    name="Our Proposal",
    cascade="graphdyns",
    graph_format="csr",
    apply_granularity="exact",
)

DESIGNS = {
    "graphicionado": GRAPHICIONADO,
    "graphdyns": GRAPHDYNS,
    "proposal": PROPOSAL,
}
