"""Vertex-centric programming cascades (paper section 8, Figure 12).

Each iteration of a vertex-centric algorithm is one cascade evaluation:

* **processing phase** — active vertices ``A0`` select the edges to process
  (``SO``), edge weights combine with source properties and reduce into the
  per-destination messages ``R``;
* **apply phase** — messages update the vertex properties ``P0 -> P1`` and
  the changed vertices become the next active set ``A1``.

A specific algorithm manifests by redefining the x and + operators: for
SSSP, to (+, min); for BFS, to (hop+1, min).  Note one deviation from the
paper's Figure 12b: its line 9 updates ``P0`` in place and line 11 aliases
``P1 = P0``, which a single-assignment cascade cannot express — the driver
merges the filtered property writes (``PU``) into the property tensor
between iterations instead, preserving the semantics.
"""

from __future__ import annotations

from ..einsum.operators import BFS_HOPS, MIN_PLUS, OpSet
from ..spec import AcceleratorSpec, load_spec

# Connected components by label propagation: a vertex's property is its
# component label; edges pass the source's label through unchanged and the
# reduction keeps the minimum label seen.
CC_LABELS = OpSet(
    name="cc-labels",
    mul=lambda edge, label: label,
    add=min,
    sub=lambda a, b: a if a != b else 0,
    zero=float("inf"),
)

GRAPHICIONADO_YAML = """
einsum:
  declaration:
    G: [V, S]
    A0: [S]
    SO: [V, S]
    R: [V]
    P0: [V]
    P1: [V]
    M: [V]
    A1: [V]
  expressions:
    - SO[v, s] = take(G[v, s], A0[s], 0)
    - R[v] = SO[v, s] * A0[s]
    - P1[v] = R[v] + P0[v]
    - M[v] = P1[v] - P0[v]
    - A1[v] = take(M[v], P1[v], 1)
mapping:
  rank-order:
    G: [V, S]
    SO: [V, S]
"""

GRAPHDYNS_YAML = """
einsum:
  declaration:
    G: [V, S]
    A0: [S]
    SO: [V, S]
    R: [V]
    P0: [V]
    MP: [V]
    NP: [V]
    M: [V]
    PU: [V]
    A1: [V]
  expressions:
    - SO[v, s] = take(G[v, s], A0[s], 0)
    - R[v] = SO[v, s] * A0[s]
    - MP[v] = take(R[v], P0[v], 1)
    - NP[v] = R[v] + MP[v]
    - M[v] = NP[v] - MP[v]
    - PU[v] = take(M[v], NP[v], 1)
    - A1[v] = take(M[v], NP[v], 1)
mapping:
  rank-order:
    G: [V, S]
    SO: [V, S]
"""


def graphicionado_cascade() -> AcceleratorSpec:
    """Figure 12a: the Graphicionado processing + apply cascade."""
    return load_spec(GRAPHICIONADO_YAML, name="graphicionado")


def graphdyns_cascade() -> AcceleratorSpec:
    """Figure 12b: GraphDynS's cascade with filtered property updates."""
    return load_spec(GRAPHDYNS_YAML, name="graphdyns")


ALGORITHM_OPSETS = {
    "bfs": BFS_HOPS,
    "sssp": MIN_PLUS,
    "cc": CC_LABELS,
}


def opset_for(algorithm: str) -> OpSet:
    try:
        return ALGORITHM_OPSETS[algorithm]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; known: "
            f"{sorted(ALGORITHM_OPSETS)}"
        ) from None
