"""Extended-Einsum language: AST, parser, cascades, operator sets."""

from .ast import (
    Access,
    Add,
    Cascade,
    CascadeError,
    Einsum,
    Expr,
    IndexExpr,
    Mul,
    Take,
    accesses,
)
from .operators import ARITHMETIC, BFS_HOPS, MIN_PLUS, NAMED_OPSETS, OpSet, opset
from .parser import EinsumSyntaxError, parse_cascade, parse_einsum

__all__ = [
    "Access",
    "Add",
    "Cascade",
    "CascadeError",
    "Einsum",
    "EinsumSyntaxError",
    "Expr",
    "IndexExpr",
    "Mul",
    "OpSet",
    "Take",
    "ARITHMETIC",
    "BFS_HOPS",
    "MIN_PLUS",
    "NAMED_OPSETS",
    "accesses",
    "opset",
    "parse_cascade",
    "parse_einsum",
]
