"""AST for TeAAL's extended Einsum notation (paper section 2.2).

An Einsum names its output tensor, an expression over input tensors, and —
implicitly — an iteration space (the Cartesian product of all index
variables' ranges).  Index expressions may be plain variables (``k``), affine
sums (``q + s``, as in convolution), or integer literals (``0``, as in the
Cooley-Tukey FFT cascade of Table 2).

The extension over classic Einsums is the ``take()`` operator (section 3.1),
which decouples intersection from computation: the output is zero wherever
any input is zero, and a copy of the selected input elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union


# ----------------------------------------------------------------------
# Index expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexExpr:
    """An affine index expression: the sum of index variables plus a constant.

    ``IndexExpr(("q", "s"))`` is ``q + s``; ``IndexExpr((), 0)`` is the
    literal coordinate 0; ``IndexExpr(("k",))`` is the plain variable ``k``.
    """

    vars: Tuple[str, ...] = ()
    const: int = 0

    @classmethod
    def var(cls, name: str) -> "IndexExpr":
        return cls((name,), 0)

    @classmethod
    def literal(cls, value: int) -> "IndexExpr":
        return cls((), value)

    @property
    def is_var(self) -> bool:
        return len(self.vars) == 1 and self.const == 0

    @property
    def is_literal(self) -> bool:
        return not self.vars

    def evaluate(self, bindings: dict) -> int:
        """Coordinate value under the given variable bindings."""
        return sum(bindings[v] for v in self.vars) + self.const

    def unbound(self, bindings: dict) -> Tuple[str, ...]:
        """Variables of this expression not present in ``bindings``."""
        return tuple(v for v in self.vars if v not in bindings)

    def __str__(self) -> str:
        parts = list(self.vars)
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts)


# ----------------------------------------------------------------------
# Expression tree
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Access:
    """A tensor access ``A[k, m]``.  ``indices is None`` means the whole
    tensor (``P1 = P0`` in the GraphDynS cascade); the cascade resolves it
    against the tensor declaration."""

    tensor: str
    indices: Optional[Tuple[IndexExpr, ...]] = None

    @property
    def index_vars(self) -> Tuple[str, ...]:
        out: List[str] = []
        for expr in self.indices or ():
            for v in expr.vars:
                if v not in out:
                    out.append(v)
        return tuple(out)

    def __str__(self) -> str:
        if self.indices is None:
            return self.tensor
        inner = ", ".join(str(e) for e in self.indices)
        return f"{self.tensor}[{inner}]"


@dataclass(frozen=True)
class Mul:
    """Product of factors (n-ary, associative)."""

    factors: Tuple["Expr", ...]

    def __str__(self) -> str:
        return " * ".join(str(f) for f in self.factors)


@dataclass(frozen=True)
class Add:
    """Sum of two terms; ``negate`` marks subtraction of the second term."""

    left: "Expr"
    right: "Expr"
    negate: bool = False

    def __str__(self) -> str:
        op = "-" if self.negate else "+"
        return f"{self.left} {op} {self.right}"


@dataclass(frozen=True)
class Take:
    """``take(in0, in1, ..., which)``: zero where any input is zero,
    otherwise a copy of input ``which`` (paper equation 6)."""

    args: Tuple[Access, ...]
    which: int

    def __post_init__(self):
        if not 0 <= self.which < len(self.args):
            raise ValueError(
                f"take() selects input {self.which} of {len(self.args)}"
            )

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"take({inner}, {self.which})"


Expr = Union[Access, Mul, Add, Take]


def accesses(expr: Expr) -> Iterator[Access]:
    """Yield every tensor access in an expression tree, left to right."""
    if isinstance(expr, Access):
        yield expr
    elif isinstance(expr, Mul):
        for f in expr.factors:
            yield from accesses(f)
    elif isinstance(expr, Add):
        yield from accesses(expr.left)
        yield from accesses(expr.right)
    elif isinstance(expr, Take):
        yield from expr.args
    else:
        raise TypeError(f"not an expression node: {expr!r}")


# ----------------------------------------------------------------------
# Einsum
# ----------------------------------------------------------------------
@dataclass
class Einsum:
    """One mapped-Einsum statement: ``output = expr``."""

    output: Access
    expr: Expr

    @property
    def name(self) -> str:
        """Einsums are named after their output tensor."""
        return self.output.tensor

    @property
    def input_tensors(self) -> List[str]:
        seen: List[str] = []
        for acc in accesses(self.expr):
            if acc.tensor not in seen:
                seen.append(acc.tensor)
        return seen

    @property
    def output_vars(self) -> Tuple[str, ...]:
        return self.output.index_vars

    @property
    def all_vars(self) -> Tuple[str, ...]:
        out = list(self.output.index_vars)
        for acc in accesses(self.expr):
            for v in acc.index_vars:
                if v not in out:
                    out.append(v)
        return tuple(out)

    @property
    def reduction_vars(self) -> Tuple[str, ...]:
        """Variables iterated but absent from the output (reduced over)."""
        outs = set(self.output.index_vars)
        return tuple(v for v in self.all_vars if v not in outs)

    @property
    def is_take(self) -> bool:
        """Take-Einsums reduce by (idempotent) overwrite, not accumulation."""
        return isinstance(self.expr, Take)

    def __str__(self) -> str:
        return f"{self.output} = {self.expr}"


# ----------------------------------------------------------------------
# Cascades
# ----------------------------------------------------------------------
class CascadeError(ValueError):
    """A cascade violates single-assignment or dependency ordering."""


@dataclass
class Cascade:
    """An ordered DAG of Einsums (paper insight 1, section 3.1).

    The list order is the execution order; validation checks that it is a
    legal topological order (every tensor is produced before it is consumed
    and written at most once).
    """

    einsums: List[Einsum] = field(default_factory=list)

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        produced = set()
        for e in self.einsums:
            if e.output.tensor in produced:
                raise CascadeError(
                    f"tensor {e.output.tensor} is written more than once"
                )
            for t in e.input_tensors:
                if t == e.output.tensor:
                    raise CascadeError(
                        f"Einsum for {t} reads its own output (cycle)"
                    )
            produced.add(e.output.tensor)
        order = {e.output.tensor: i for i, e in enumerate(self.einsums)}
        for i, e in enumerate(self.einsums):
            for t in e.input_tensors:
                if t in order and order[t] > i:
                    raise CascadeError(
                        f"Einsum for {e.output.tensor} reads {t} before it "
                        "is produced"
                    )

    def __iter__(self) -> Iterator[Einsum]:
        return iter(self.einsums)

    def __len__(self) -> int:
        return len(self.einsums)

    def __getitem__(self, name_or_index) -> Einsum:
        if isinstance(name_or_index, int):
            return self.einsums[name_or_index]
        for e in self.einsums:
            if e.name == name_or_index:
                return e
        raise KeyError(f"no Einsum produces {name_or_index!r}")

    @property
    def produced(self) -> List[str]:
        return [e.output.tensor for e in self.einsums]

    @property
    def inputs(self) -> List[str]:
        """Tensors read by the cascade but never produced by it."""
        made = set(self.produced)
        seen: List[str] = []
        for e in self.einsums:
            for t in e.input_tensors:
                if t not in made and t not in seen:
                    seen.append(t)
        return seen

    @property
    def intermediates(self) -> List[str]:
        """Tensors both produced and consumed within the cascade."""
        consumed = {t for e in self.einsums for t in e.input_tensors}
        return [t for t in self.produced if t in consumed]

    @property
    def outputs(self) -> List[str]:
        """Tensors produced but never consumed (the cascade's results)."""
        consumed = {t for e in self.einsums for t in e.input_tensors}
        return [t for t in self.produced if t not in consumed]

    def dependency_edges(self) -> List[Tuple[str, str]]:
        """(producer_output, consumer_output) edges of the cascade DAG."""
        order = {e.output.tensor: i for i, e in enumerate(self.einsums)}
        edges = []
        for e in self.einsums:
            for t in e.input_tensors:
                if t in order:
                    edges.append((t, e.output.tensor))
        return edges

    def __str__(self) -> str:
        return "\n".join(str(e) for e in self.einsums)
