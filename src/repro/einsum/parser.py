"""Parser for extended-Einsum statements.

Accepts the concrete syntax used throughout the paper's figures, e.g.::

    T[k, m, n] = A[k, m] * B[k, n]
    Z[m, n] = T[k, m, n]
    S[k, m] = take(A[k, m], B[k, n], 0)
    O[q] = I[q + s] * F[s]
    Y1[k0] = E[0, k0] - T[k0]
    P1 = P0

Grammar (whitespace-insensitive)::

    stmt   := access '=' expr
    expr   := term (('+' | '-') term)*
    term   := factor ('*' factor)*
    factor := take | access
    take   := 'take' '(' access (',' access)* ',' INT ')'
    access := NAME ('[' index (',' index)* ']')?
    index  := INT | NAME ('+' (NAME | INT))*
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .ast import Access, Add, Cascade, Einsum, Expr, IndexExpr, Mul, Take

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<int>\d+)|(?P<sym>[\[\],=+\-*()]))"
)


class EinsumSyntaxError(ValueError):
    """Raised when an Einsum statement cannot be parsed."""


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise EinsumSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos} in {text!r}"
            )
        pos = match.end()
        if match.lastgroup and match.group(match.lastgroup).strip():
            kind = match.lastgroup
            tokens.append((kind, match.group(kind)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        if self.pos >= len(self.tokens):
            return ("eof", "")
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, value: str) -> None:
        kind, tok = self.next()
        if tok != value:
            raise EinsumSyntaxError(
                f"expected {value!r} but found {tok!r} in {self.text!r}"
            )

    # -- grammar ------------------------------------------------------
    def statement(self) -> Einsum:
        out = self.access()
        self.expect("=")
        expr = self.expr()
        if self.peek()[0] != "eof":
            raise EinsumSyntaxError(
                f"trailing tokens after expression in {self.text!r}"
            )
        return Einsum(out, expr)

    def expr(self) -> Expr:
        node = self.term()
        while self.peek()[1] in ("+", "-"):
            _, op = self.next()
            right = self.term()
            node = Add(node, right, negate=(op == "-"))
        return node

    def term(self) -> Expr:
        factors = [self.factor()]
        while self.peek()[1] == "*":
            self.next()
            factors.append(self.factor())
        if len(factors) == 1:
            return factors[0]
        return Mul(tuple(factors))

    def factor(self) -> Expr:
        kind, tok = self.peek()
        if kind == "name" and tok == "take":
            return self.take()
        if kind == "name":
            return self.access()
        raise EinsumSyntaxError(f"expected a tensor access, found {tok!r}")

    def take(self) -> Take:
        self.next()  # 'take'
        self.expect("(")
        args = [self.access()]
        which = None
        while self.peek()[1] == ",":
            self.next()
            kind, tok = self.peek()
            if kind == "int":
                self.next()
                which = int(tok)
                break
            args.append(self.access())
        self.expect(")")
        if which is None:
            raise EinsumSyntaxError(
                f"take() requires a final integer selector in {self.text!r}"
            )
        return Take(tuple(args), which)

    def access(self) -> Access:
        kind, name = self.next()
        if kind != "name":
            raise EinsumSyntaxError(f"expected tensor name, found {name!r}")
        if self.peek()[1] != "[":
            return Access(name, None)
        self.next()  # '['
        indices = [self.index()]
        while self.peek()[1] == ",":
            self.next()
            indices.append(self.index())
        self.expect("]")
        return Access(name, tuple(indices))

    def index(self) -> IndexExpr:
        vars_: List[str] = []
        const = 0
        while True:
            kind, tok = self.next()
            if kind == "name":
                vars_.append(tok)
            elif kind == "int":
                const += int(tok)
            else:
                raise EinsumSyntaxError(
                    f"expected index variable or literal, found {tok!r}"
                )
            if self.peek()[1] == "+":
                self.next()
                continue
            break
        return IndexExpr(tuple(vars_), const)


def parse_einsum(text: str) -> Einsum:
    """Parse a single extended-Einsum statement."""
    return _Parser(text).statement()


def parse_cascade(statements) -> Cascade:
    """Parse an ordered sequence of statements into a validated cascade."""
    if isinstance(statements, str):
        statements = [
            line.strip() for line in statements.strip().splitlines() if line.strip()
        ]
    return Cascade([parse_einsum(s) for s in statements])
