"""Operator sets: the algebra an Einsum cascade computes over.

The paper (section 8, Figure 12) notes that a specific graph algorithm
"manifests by redefining the x and + operators (e.g., for SSSP, to addition
and minimum, respectively)".  An :class:`OpSet` carries those definitions;
the executor threads it through every compute and reduction.

``sub`` supports the mask-building Einsums of the vertex-centric cascades
(``M[v] = P1[v] - P0[v]``); its result of 0 means "unchanged", and zero
results are pruned from the output fibertree, so the mask is sparse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class OpSet:
    """The (x, +, -) operator bindings for one Einsum or a whole cascade."""

    name: str = "arithmetic"
    mul: Callable[[Any, Any], Any] = lambda a, b: a * b
    add: Callable[[Any, Any], Any] = lambda a, b: a + b
    sub: Callable[[Any, Any], Any] = lambda a, b: a - b
    # Identity of `add`, used to seed reductions.
    zero: Any = 0
    # Whether `mul` is numpy-elementwise and `add` is IEEE `+`, so the
    # vector kernel flavor may evaluate whole leaf spans with batched
    # numpy ops (and reduce them with np.add.accumulate) bit-identically
    # to the scalar loop.  Off by default: a custom OpSet must opt in.
    vector_ok: bool = False

    def reduce_into(self, acc: Any, value: Any) -> Any:
        return self.add(acc, value) if acc is not None else value


ARITHMETIC = OpSet(vector_ok=True)

# Tropical / min-plus algebra: x = +, + = min.  SSSP relaxation (section 8).
MIN_PLUS = OpSet(
    name="min-plus",
    mul=lambda a, b: a + b,
    add=min,
    sub=lambda a, b: a if a != b else 0,
    zero=float("inf"),
)

# BFS: combining an edge with a source property yields (hops + 1); reduction
# keeps the minimum hop count.
BFS_HOPS = OpSet(
    name="bfs-hops",
    mul=lambda edge, prop: prop + 1,
    add=min,
    sub=lambda a, b: a if a != b else 0,
    zero=float("inf"),
)

NAMED_OPSETS = {
    "arithmetic": ARITHMETIC,
    "min-plus": MIN_PLUS,
    "bfs-hops": BFS_HOPS,
}


def opset(name_or_opset) -> OpSet:
    """Resolve an operator-set name or pass an OpSet through."""
    if isinstance(name_or_opset, OpSet):
        return name_or_opset
    try:
        return NAMED_OPSETS[name_or_opset]
    except KeyError:
        raise KeyError(
            f"unknown operator set {name_or_opset!r}; "
            f"known: {sorted(NAMED_OPSETS)}"
        ) from None
