"""Loading complete accelerator specifications.

An :class:`AcceleratorSpec` bundles the five TeAAL specification levels
(paper Figure 7, top to bottom of the pyramid):

1. ``einsum``       — the cascade of Einsums (most concise),
2. ``mapping``      — rank orders, partitioning, loop orders, spacetime,
3. ``format``       — concrete per-rank representations,
4. ``architecture`` — hardware topologies,
5. ``binding``      — data/ops bound to components (finest grain).

Specs are written as YAML (matching the paper's concrete syntax) or built
from dicts.  ``params`` binds symbolic partition sizes (ExTensor's
``uniform_shape(K1)``) to numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import yaml

from .architecture import ArchitectureSpec
from .binding import BindingSpec
from .einsum_spec import EinsumSpec
from .errors import SpecError
from .format import FormatSpec
from .mapping import MappingSpec


@dataclass
class AcceleratorSpec:
    """A complete, validated accelerator description."""

    einsum: EinsumSpec
    mapping: MappingSpec
    format: FormatSpec = field(default_factory=FormatSpec)
    architecture: ArchitectureSpec = field(default_factory=ArchitectureSpec)
    binding: BindingSpec = field(default_factory=BindingSpec)
    params: Dict[str, int] = field(default_factory=dict)
    name: str = "accelerator"

    @classmethod
    def from_dict(cls, data: dict, name: str = "accelerator") -> "AcceleratorSpec":
        if "einsum" not in data:
            raise SpecError("spec", "missing top-level 'einsum' block")
        spec = cls(
            einsum=EinsumSpec.from_dict(data["einsum"]),
            mapping=MappingSpec.from_dict(data.get("mapping") or {}),
            format=FormatSpec.from_dict(data.get("format") or {}),
            architecture=ArchitectureSpec.from_dict(data.get("architecture") or {}),
            binding=BindingSpec.from_dict(data.get("binding") or {}),
            params={str(k): int(v) for k, v in (data.get("params") or {}).items()},
            name=name,
        )
        spec.validate()
        return spec

    @classmethod
    def from_yaml(cls, text: str, name: str = "accelerator") -> "AcceleratorSpec":
        data = yaml.safe_load(text)
        if not isinstance(data, dict):
            raise SpecError("spec", "top level of a spec must be a mapping")
        return cls.from_dict(data, name)

    def validate(self) -> None:
        declared = set(self.einsum.declaration)
        for tensor in self.mapping.rank_order:
            if tensor not in declared:
                raise SpecError(
                    "mapping", f"rank-order given for undeclared tensor {tensor!r}"
                )
        for tensor, order in self.mapping.rank_order.items():
            if sorted(order) != sorted(self.einsum.declaration[tensor]):
                raise SpecError(
                    "mapping",
                    f"rank-order {order} of {tensor} is not a permutation of "
                    f"declared ranks {self.einsum.declaration[tensor]}",
                )
        produced = set(self.einsum.cascade.produced)
        for name in self.mapping.einsums:
            if name not in produced:
                raise SpecError(
                    "mapping", f"mapping given for unknown Einsum {name!r}"
                )
        for name, binding in self.binding.einsums.items():
            if name not in produced:
                raise SpecError(
                    "binding", f"binding given for unknown Einsum {name!r}"
                )
            if binding.config is not None:
                self.architecture.topology(binding.config)

    def param(self, name: str, default: Optional[int] = None) -> int:
        if name in self.params:
            return self.params[name]
        if default is not None:
            return default
        raise SpecError("spec", f"missing parameter {name!r}")

    def with_params(self, **params: int) -> "AcceleratorSpec":
        """Copy of this spec with additional/overridden parameters."""
        merged = dict(self.params)
        merged.update({k: int(v) for k, v in params.items()})
        return AcceleratorSpec(
            einsum=self.einsum,
            mapping=self.mapping,
            format=self.format,
            architecture=self.architecture,
            binding=self.binding,
            params=merged,
            name=self.name,
        )


def load_spec(source, name: str = "accelerator") -> AcceleratorSpec:
    """Load a spec from YAML text or a dict."""
    if isinstance(source, AcceleratorSpec):
        return source
    if isinstance(source, str):
        return AcceleratorSpec.from_yaml(source, name)
    if isinstance(source, dict):
        return AcceleratorSpec.from_dict(source, name)
    raise TypeError(f"cannot load a spec from {type(source).__name__}")
