"""Loading complete accelerator specifications.

An :class:`AcceleratorSpec` bundles the five TeAAL specification levels
(paper Figure 7, top to bottom of the pyramid):

1. ``einsum``       — the cascade of Einsums (most concise),
2. ``mapping``      — rank orders, partitioning, loop orders, spacetime,
3. ``format``       — concrete per-rank representations,
4. ``architecture`` — hardware topologies,
5. ``binding``      — data/ops bound to components (finest grain).

Specs are written as YAML (matching the paper's concrete syntax) or built
from dicts.  ``params`` binds symbolic partition sizes (ExTensor's
``uniform_shape(K1)``) to numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import yaml

from .architecture import ArchitectureSpec
from .binding import BindingSpec
from .einsum_spec import EinsumSpec
from .errors import SpecError
from .format import FormatSpec
from .mapping import MappingSpec


def yaml_key_lines(text: str) -> Dict[Tuple[str, ...], int]:
    """Map every YAML key path of ``text`` to its 1-based source line.

    Keys are tuples of mapping keys from the root (sequence items do not
    extend the path), so ``("mapping", "loop-order", "Z")`` resolves to
    the line where the ``Z:`` key appears.  Returns ``{}`` for YAML
    that does not parse (the loader reports that separately).
    """
    try:
        root = yaml.compose(text)
    except yaml.YAMLError:
        return {}
    lines: Dict[Tuple[str, ...], int] = {}

    def walk(node, path: Tuple[str, ...]) -> None:
        if isinstance(node, yaml.MappingNode):
            for key_node, value_node in node.value:
                key = getattr(key_node, "value", None)
                if not isinstance(key, str):
                    continue
                sub = path + (key,)
                lines.setdefault(sub, key_node.start_mark.line + 1)
                walk(value_node, sub)
        elif isinstance(node, yaml.SequenceNode):
            for item in node.value:
                walk(item, path)

    if root is not None:
        walk(root, ())
    return lines


def _locate(key_lines: Dict[Tuple[str, ...], int],
            path: Optional[Tuple[str, ...]], section: str,
            source: str) -> Optional[str]:
    """``file:line`` of the deepest known prefix of ``path`` (falling
    back to the section's top-level key), or None if nothing matches."""
    candidates = []
    if path:
        candidates.extend(tuple(path[:i]) for i in range(len(path), 0, -1))
    candidates.append((section,))
    for cand in candidates:
        line = key_lines.get(cand)
        if line is not None:
            return f"{source}:{line}"
    return None


def _with_location(err: SpecError, location: str) -> SpecError:
    """Copy of ``err`` (same type) with a source location attached."""
    new = type(err).__new__(type(err))
    SpecError.__init__(new, err.section, err.raw_message, path=err.path,
                       location=location)
    return new


@dataclass
class AcceleratorSpec:
    """A complete, validated accelerator description."""

    einsum: EinsumSpec
    mapping: MappingSpec
    format: FormatSpec = field(default_factory=FormatSpec)
    architecture: ArchitectureSpec = field(default_factory=ArchitectureSpec)
    binding: BindingSpec = field(default_factory=BindingSpec)
    params: Dict[str, int] = field(default_factory=dict)
    name: str = "accelerator"

    @classmethod
    def from_dict(cls, data: dict, name: str = "accelerator") -> "AcceleratorSpec":
        if "einsum" not in data:
            raise SpecError("spec", "missing top-level 'einsum' block")
        spec = cls(
            einsum=EinsumSpec.from_dict(data["einsum"]),
            mapping=MappingSpec.from_dict(data.get("mapping") or {}),
            format=FormatSpec.from_dict(data.get("format") or {}),
            architecture=ArchitectureSpec.from_dict(data.get("architecture") or {}),
            binding=BindingSpec.from_dict(data.get("binding") or {}),
            params={str(k): int(v) for k, v in (data.get("params") or {}).items()},
            name=name,
        )
        spec.validate()
        return spec

    @classmethod
    def from_yaml(cls, text: str, name: str = "accelerator",
                  source_file: Optional[str] = None) -> "AcceleratorSpec":
        data = yaml.safe_load(text)
        if not isinstance(data, dict):
            raise SpecError("spec", "top level of a spec must be a mapping",
                            location=source_file)
        key_lines = yaml_key_lines(text)
        source = source_file or f"<{name}>"
        try:
            spec = cls.from_dict(data, name)
        except SpecError as err:
            if err.location is not None:
                raise
            location = _locate(key_lines, err.path, err.section, source)
            if location is None:
                raise
            raise _with_location(err, location) from err
        # Plain instance attributes (not dataclass fields), so cache
        # fingerprints over the spec layers are unaffected.
        spec.source_file = source_file
        spec.key_lines = key_lines
        return spec

    def validate(self) -> None:
        declared = set(self.einsum.declaration)
        for tensor in self.mapping.rank_order:
            if tensor not in declared:
                raise SpecError(
                    "mapping",
                    f"rank-order given for undeclared tensor {tensor!r}",
                    path=("mapping", "rank-order", tensor),
                )
        for tensor, order in self.mapping.rank_order.items():
            if sorted(order) != sorted(self.einsum.declaration[tensor]):
                raise SpecError(
                    "mapping",
                    f"rank-order {order} of {tensor} is not a permutation of "
                    f"declared ranks {self.einsum.declaration[tensor]}",
                    path=("mapping", "rank-order", tensor),
                )
        produced = set(self.einsum.cascade.produced)
        for name in self.mapping.einsums:
            if name not in produced:
                raise SpecError(
                    "mapping",
                    f"mapping given for unknown Einsum {name!r}",
                    path=("mapping", "loop-order", name),
                )
        for name, binding in self.binding.einsums.items():
            if name not in produced:
                raise SpecError(
                    "binding",
                    f"binding given for unknown Einsum {name!r}",
                    path=("binding", name),
                )
            if binding.config is not None:
                self.architecture.topology(binding.config)

    def param(self, name: str, default: Optional[int] = None) -> int:
        if name in self.params:
            return self.params[name]
        if default is not None:
            return default
        raise SpecError("spec", f"missing parameter {name!r}")

    def with_params(self, **params: int) -> "AcceleratorSpec":
        """Copy of this spec with additional/overridden parameters."""
        merged = dict(self.params)
        merged.update({k: int(v) for k, v in params.items()})
        return AcceleratorSpec(
            einsum=self.einsum,
            mapping=self.mapping,
            format=self.format,
            architecture=self.architecture,
            binding=self.binding,
            params=merged,
            name=self.name,
        )


def load_spec(source, name: str = "accelerator") -> AcceleratorSpec:
    """Load a spec from YAML text or a dict."""
    if isinstance(source, AcceleratorSpec):
        return source
    if isinstance(source, str):
        return AcceleratorSpec.from_yaml(source, name)
    if isinstance(source, dict):
        return AcceleratorSpec.from_dict(source, name)
    raise TypeError(f"cannot load a spec from {type(source).__name__}")
