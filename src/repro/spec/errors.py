"""Spec validation errors."""


class SpecError(ValueError):
    """A TeAAL specification is malformed or internally inconsistent."""

    def __init__(self, section: str, message: str):
        self.section = section
        super().__init__(f"[{section}] {message}")
