"""Spec validation errors.

:class:`SpecError` carries, beyond the offending section and message, an
optional *spec path* (the YAML key path of the offending node, e.g.
``("mapping", "loop-order", "Z")``) and an optional *source location*
(``file:line``).  Both are attached by the YAML loader when the spec came
from annotated text; errors raised on dict-built specs simply omit them.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


def _rebuild_spec_error(cls, section, message, path, location):
    """Unpickle helper: rebuild through :class:`SpecError`'s own init so
    subclasses with narrower signatures (``BuildError``) round-trip."""
    err = SpecError.__new__(cls)
    SpecError.__init__(err, section, message, path=path, location=location)
    return err


class SpecError(ValueError):
    """A TeAAL specification is malformed or internally inconsistent."""

    def __init__(self, section: str, message: str, *,
                 path: Optional[Sequence[str]] = None,
                 location: Optional[str] = None):
        self.section = section
        self.raw_message = message
        self.path: Optional[Tuple[str, ...]] = (
            tuple(str(p) for p in path) if path else None
        )
        self.location = location
        text = f"[{section}] {message}"
        if location:
            text += f" (at {location})"
        super().__init__(text)

    def __reduce__(self):
        # ValueError's default __reduce__ replays args, which for this
        # class is the single formatted string — not a valid (section,
        # message) pair.  Rebuild explicitly so SpecErrors survive the
        # process-pool boundary.
        return (_rebuild_spec_error,
                (type(self), self.section, self.raw_message, self.path,
                 self.location))
