"""The ``format`` specification: lowering fibertrees to concrete
representations (paper section 4.1.1, Figure 5b).

Each tensor may carry several named format *configurations* (the
representation can change as the computation manipulates the fibertree).
Within a configuration, each rank specifies:

* ``format`` — ``U`` (uncompressed: data arrays sized by the fiber shape),
  ``C`` (compressed: sized by occupancy), or ``B`` (uncompressed coordinates
  with compressed payloads);
* ``cbits`` / ``pbits`` / ``fhbits`` — data widths of coordinates, payloads,
  and fiber headers (0 or omitted = not stored explicitly);
* ``layout`` — ``contiguous`` (struct-of-arrays) or ``interleaved``
  (array-of-structs, e.g. OuterSPACE's linked-list elements).

Common formats expressed in this scheme:

* CSR: top rank ``U`` with ``pbits`` = offset width; bottom rank ``C`` with
  ``cbits`` = column-id width, ``pbits`` = value width.
* COO: every rank ``C`` with both ``cbits`` and ``pbits``.
* Bitmap (SIGMA): rank ``B`` with ``cbits: 1``.
* OuterSPACE linked lists: ``U`` pointer array over interleaved ``C`` fibers
  with ``fhbits`` next-pointers (Figure 5c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .errors import SpecError

_FORMAT_TYPES = ("U", "C", "B")
_LAYOUTS = ("contiguous", "interleaved")


@dataclass(frozen=True)
class RankFormat:
    """Concrete representation of all fibers in one rank."""

    format: str = "C"
    cbits: int = 32
    pbits: int = 64
    fhbits: int = 0
    layout: str = "contiguous"

    def __post_init__(self):
        if self.format not in _FORMAT_TYPES:
            raise SpecError(
                "format", f"format type must be one of {_FORMAT_TYPES}, "
                f"got {self.format!r}"
            )
        if self.layout not in _LAYOUTS:
            raise SpecError(
                "format", f"layout must be one of {_LAYOUTS}, got {self.layout!r}"
            )
        for attr in ("cbits", "pbits", "fhbits"):
            if getattr(self, attr) < 0:
                raise SpecError("format", f"{attr} must be non-negative")

    @classmethod
    def from_dict(cls, data: dict) -> "RankFormat":
        known = {"format", "cbits", "pbits", "fhbits", "layout"}
        unknown = set(data) - known
        if unknown:
            raise SpecError("format", f"unknown rank-format keys {sorted(unknown)}")
        return cls(
            format=str(data.get("format", "C")),
            cbits=int(data.get("cbits", 0)),
            pbits=int(data.get("pbits", 0)),
            fhbits=int(data.get("fhbits", 0)),
            layout=str(data.get("layout", "contiguous")),
        )

    def coord_footprint_bits(self) -> int:
        """Bits moved when one coordinate of this rank is accessed."""
        return self.cbits

    def payload_footprint_bits(self) -> int:
        """Bits moved when one payload of this rank is accessed."""
        return self.pbits

    def element_footprint_bits(self) -> int:
        """Bits of one (coordinate, payload) element."""
        return self.cbits + self.pbits


@dataclass
class TensorFormat:
    """Named format configurations for one tensor: config -> rank -> format."""

    tensor: str
    configs: Dict[str, Dict[str, RankFormat]] = field(default_factory=dict)

    def rank_format(self, rank: str, config: Optional[str] = None) -> RankFormat:
        cfg = self._config(config)
        if rank not in cfg:
            return RankFormat()
        return cfg[rank]

    def _config(self, config: Optional[str]) -> Dict[str, RankFormat]:
        if not self.configs:
            return {}
        if config is None:
            if len(self.configs) == 1:
                return next(iter(self.configs.values()))
            raise SpecError(
                "format",
                f"tensor {self.tensor} has configs {sorted(self.configs)}; "
                "bindings must name one",
            )
        if config not in self.configs:
            raise SpecError(
                "format", f"tensor {self.tensor} has no config {config!r}"
            )
        return self.configs[config]


@dataclass
class FormatSpec:
    """The whole ``format`` block: tensor -> TensorFormat."""

    tensors: Dict[str, TensorFormat] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: dict) -> "FormatSpec":
        tensors = {}
        for tensor, configs in (data or {}).items():
            parsed: Dict[str, Dict[str, RankFormat]] = {}
            for config, ranks in configs.items():
                parsed[str(config)] = {
                    str(rank): RankFormat.from_dict(fmt or {})
                    for rank, fmt in (ranks or {}).items()
                }
            tensors[str(tensor)] = TensorFormat(str(tensor), parsed)
        return cls(tensors)

    def for_tensor(self, tensor: str) -> TensorFormat:
        """Format of a tensor (an all-default format when unspecified)."""
        return self.tensors.get(tensor) or TensorFormat(tensor)

    def rank_format(
        self, tensor: str, rank: str, config: Optional[str] = None
    ) -> RankFormat:
        return self.for_tensor(tensor).rank_format(rank, config)
