"""The ``binding`` specification: matching fibertree operations to concrete
representations and hardware components (paper section 4.1.3, Figure 5e).

Per Einsum, the binding names the architecture topology used and, per
component, what is bound there:

* storage components (``DRAM``/``Buffer``) bind data slices, identified by
  ``tensor``, ``rank``, ``type`` (``coord`` | ``payload`` | ``elem`` |
  ``subtree``), an optional format ``config``, a ``style`` (``lazy`` loads
  only the element accessed; ``eager`` loads the whole subtree below it on
  first access), and — for explicitly-managed buffets — ``evict-on``, the
  loop rank whose change drains the buffer;
* compute components bind operations: ``{op: mul}``, ``{op: add}``;
* intersection units bind the rank they co-iterate: ``{rank: K}``;
* mergers bind the swizzle of an intermediate tensor: ``{tensor: T, op:
  swizzle}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import SpecError

_DATA_TYPES = ("coord", "payload", "elem", "subtree")
_STYLES = ("lazy", "eager")


@dataclass(frozen=True)
class DataBinding:
    """A slice of a tensor bound to a storage component."""

    tensor: str
    rank: str = "root"
    type: str = "elem"
    style: str = "lazy"
    evict_on: Optional[str] = None
    config: Optional[str] = None
    # spill=False marks data that never reaches DRAM (an intermediate that
    # lives and dies on-chip, e.g. Gamma's T inside its fused block).
    spill: bool = True

    def __post_init__(self):
        if self.type not in _DATA_TYPES:
            raise SpecError(
                "binding", f"data type must be one of {_DATA_TYPES}, "
                f"got {self.type!r}"
            )
        if self.style not in _STYLES:
            raise SpecError(
                "binding", f"style must be one of {_STYLES}, got {self.style!r}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "DataBinding":
        return cls(
            tensor=str(data["tensor"]),
            rank=str(data.get("rank", "root")),
            type=str(data.get("type", "elem")),
            style=str(data.get("style", "lazy")),
            evict_on=data.get("evict-on"),
            config=data.get("config"),
            spill=bool(data.get("spill", True)),
        )


@dataclass(frozen=True)
class OpBinding:
    """An operation bound to a compute / intersection / merger component."""

    op: str  # 'mul' | 'add' | 'intersect' | 'swizzle' | 'sequence'
    tensor: Optional[str] = None
    rank: Optional[str] = None

    @classmethod
    def from_dict(cls, data: dict) -> "OpBinding":
        return cls(
            op=str(data.get("op", "intersect")),
            tensor=data.get("tensor"),
            rank=data.get("rank"),
        )


@dataclass
class EinsumBinding:
    """Bindings of one Einsum: a topology name plus per-component bindings."""

    einsum: str
    config: Optional[str] = None
    data: Dict[str, List[DataBinding]] = field(default_factory=dict)
    ops: Dict[str, List[OpBinding]] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, einsum: str, block: dict) -> "EinsumBinding":
        block = block or {}
        data: Dict[str, List[DataBinding]] = {}
        ops: Dict[str, List[OpBinding]] = {}
        for component, bindings in (block.get("components") or {}).items():
            for entry in bindings or []:
                if "tensor" in entry and "op" not in entry:
                    data.setdefault(str(component), []).append(
                        DataBinding.from_dict(entry)
                    )
                else:
                    ops.setdefault(str(component), []).append(
                        OpBinding.from_dict(entry)
                    )
        return cls(
            einsum=einsum,
            config=block.get("config"),
            data=data,
            ops=ops,
        )

    def bindings_for_tensor(self, tensor: str) -> List[DataBinding]:
        return [
            b for entries in self.data.values() for b in entries
            if b.tensor == tensor
        ]

    def component_of_op(self, op: str) -> Optional[str]:
        for component, entries in self.ops.items():
            if any(e.op == op for e in entries):
                return component
        return None


@dataclass
class BindingSpec:
    """The whole ``binding`` block: einsum -> EinsumBinding."""

    einsums: Dict[str, EinsumBinding] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: dict) -> "BindingSpec":
        return cls(
            {
                str(name): EinsumBinding.from_dict(str(name), block)
                for name, block in (data or {}).items()
            }
        )

    def for_einsum(self, name: str) -> EinsumBinding:
        return self.einsums.get(name) or EinsumBinding(einsum=name)
