"""The five TeAAL specification levels and the spec loader."""

from .architecture import ArchitectureSpec, Component, Topology
from .binding import BindingSpec, DataBinding, EinsumBinding, OpBinding
from .einsum_spec import EinsumSpec
from .errors import SpecError
from .format import FormatSpec, RankFormat, TensorFormat
from .loader import AcceleratorSpec, load_spec
from .mapping import (
    EinsumMapping,
    MappingSpec,
    PartitionDirective,
    SpacetimeRank,
)

__all__ = [
    "AcceleratorSpec",
    "ArchitectureSpec",
    "BindingSpec",
    "Component",
    "DataBinding",
    "EinsumBinding",
    "EinsumMapping",
    "EinsumSpec",
    "FormatSpec",
    "MappingSpec",
    "OpBinding",
    "PartitionDirective",
    "RankFormat",
    "SpacetimeRank",
    "SpecError",
    "TensorFormat",
    "Topology",
    "load_spec",
]
