"""The ``architecture`` specification: the accelerator topology as a tree of
compute and storage units (paper section 4.1.2, Figure 5f, Table 3).

An architecture block may define several named *topologies* (configs), since
an accelerator such as OuterSPACE reorganizes itself between phases.  Each
topology is a tree of levels; a level has ``local`` components and child
``subtree`` levels, and may carry a ``num`` multiplicity (16 PTs of 16 PEs).

Component classes and attributes follow Table 3:

====================  =====================================================
Component             Attributes
====================  =====================================================
``DRAM``              ``bandwidth`` (GB/s)
``Buffer``            ``type`` (``buffet`` | ``cache``), ``width`` (bits),
                      ``depth`` (entries), ``bandwidth`` (GB/s)
``Intersection``      ``type`` (``two-finger`` | ``leader-follower`` |
                      ``skip-ahead``), ``leader``
``Merger``            ``inputs``, ``comparator_radix``, ``outputs``,
                      ``order`` (``fifo`` | ``opt``), ``reduce``
``Sequencer``         ``num_ranks``
``Compute``           ``type`` (``mul`` | ``add``)
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import SpecError

COMPONENT_CLASSES = {
    "DRAM": {"bandwidth"},
    "Buffer": {"type", "width", "depth", "bandwidth"},
    "Intersection": {"type", "leader", "throughput"},
    "Merger": {"inputs", "comparator_radix", "outputs", "order", "reduce"},
    "Sequencer": {"num_ranks"},
    "Compute": {"type", "throughput"},
}


@dataclass
class Component:
    """One hardware component instance class within a topology.

    ``count`` is the total number of instances: the product of the ``num``
    multiplicities on the path from the topology root to the component.
    """

    name: str
    klass: str
    attributes: Dict[str, object] = field(default_factory=dict)
    count: int = 1
    level: str = ""

    def __post_init__(self):
        if self.klass not in COMPONENT_CLASSES:
            raise SpecError(
                "architecture",
                f"unknown component class {self.klass!r} for {self.name}; "
                f"known: {sorted(COMPONENT_CLASSES)}",
            )
        unknown = set(self.attributes) - COMPONENT_CLASSES[self.klass]
        if unknown:
            raise SpecError(
                "architecture",
                f"component {self.name} ({self.klass}) has unknown "
                f"attributes {sorted(unknown)}",
            )

    def attr(self, key: str, default=None):
        return self.attributes.get(key, default)


@dataclass
class Topology:
    """A flattened topology: all components with instance counts resolved."""

    name: str
    clock_hz: float
    components: Dict[str, Component] = field(default_factory=dict)

    def component(self, name: str) -> Component:
        try:
            return self.components[name]
        except KeyError:
            raise SpecError(
                "architecture",
                f"topology {self.name} has no component {name!r}; "
                f"known: {sorted(self.components)}",
            ) from None

    def of_class(self, klass: str) -> List[Component]:
        return [c for c in self.components.values() if c.klass == klass]


def _walk_level(level: dict, multiplier: int, path: str, out: Dict[str, Component]):
    name = str(level.get("name", path or "root"))
    num = int(level.get("num", 1))
    total = multiplier * num
    for comp in level.get("local") or []:
        component = Component(
            name=str(comp["name"]),
            klass=str(comp.get("class", "Buffer")),
            attributes=dict(comp.get("attributes") or {}),
            count=total,
            level=name,
        )
        if component.name in out:
            raise SpecError(
                "architecture", f"duplicate component name {component.name!r}"
            )
        out[component.name] = component
    for child in level.get("subtree") or []:
        _walk_level(child, total, name, out)


@dataclass
class ArchitectureSpec:
    """All topologies of an accelerator."""

    topologies: Dict[str, Topology] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: dict) -> "ArchitectureSpec":
        topologies = {}
        for name, block in (data or {}).items():
            block = block or {}
            clock = float(block.get("clock", 1e9))
            components: Dict[str, Component] = {}
            for level in block.get("subtree") or []:
                _walk_level(level, 1, "", components)
            topologies[str(name)] = Topology(str(name), clock, components)
        return cls(topologies)

    def topology(self, name: Optional[str] = None) -> Topology:
        if not self.topologies:
            raise SpecError("architecture", "no topologies defined")
        if name is None:
            if len(self.topologies) == 1:
                return next(iter(self.topologies.values()))
            raise SpecError(
                "architecture",
                f"multiple topologies {sorted(self.topologies)}; "
                "bindings must name one",
            )
        try:
            return self.topologies[name]
        except KeyError:
            raise SpecError(
                "architecture",
                f"no topology {name!r}; known: {sorted(self.topologies)}",
            ) from None
