"""The ``mapping`` specification: rank-order, partitioning, loop-order,
spacetime (paper Figure 3, lines 10-31).

Partitioning directives follow the paper's concrete syntax::

    uniform_shape(128)        # coordinate-based split, chunk shape 128
    uniform_shape(K0)         # symbolic size, bound via spec params
    uniform_occupancy(A.256)  # occupancy split, leader tensor A, 256 each
    flatten()                 # combine the listed ranks into one

Partitioning is keyed per Einsum (by its output tensor), then by the rank
(or parenthesized rank tuple for flatten) the directive applies to.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..fibertree.rankid import flatten_name, split_names
from .errors import SpecError

_DIRECTIVE_RE = re.compile(
    r"^\s*(?P<kind>uniform_shape|uniform_occupancy|flatten)\s*"
    r"\(\s*(?P<body>[^)]*)\s*\)\s*$"
)


@dataclass(frozen=True)
class PartitionDirective:
    """One partitioning step applied to a rank (or flattened rank group)."""

    kind: str  # 'uniform_shape' | 'uniform_occupancy' | 'flatten'
    size: Union[int, str, None] = None  # int, or symbolic parameter name
    leader: Optional[str] = None  # leader tensor for occupancy splits

    @classmethod
    def parse(cls, text: str) -> "PartitionDirective":
        match = _DIRECTIVE_RE.match(str(text))
        if match is None:
            raise SpecError("mapping", f"bad partitioning directive {text!r}")
        kind = match.group("kind")
        body = match.group("body").strip()
        if kind == "flatten":
            if body:
                raise SpecError("mapping", "flatten() takes no arguments")
            return cls("flatten")
        if kind == "uniform_shape":
            size: Union[int, str] = int(body) if body.isdigit() else body
            if body == "":
                raise SpecError("mapping", "uniform_shape() needs a size")
            return cls("uniform_shape", size)
        # uniform_occupancy(A.256)
        if "." not in body:
            raise SpecError(
                "mapping",
                f"uniform_occupancy needs leader.size, got {body!r}",
            )
        leader, size_text = body.split(".", 1)
        size = int(size_text) if size_text.isdigit() else size_text
        return cls("uniform_occupancy", size, leader.strip())

    def resolve_size(self, params: Dict[str, int]) -> int:
        """Numeric size, resolving symbolic names through ``params``."""
        if isinstance(self.size, int):
            return self.size
        if self.size in params:
            return int(params[self.size])
        raise SpecError(
            "mapping",
            f"symbolic partition size {self.size!r} has no binding in params",
        )

    def __str__(self) -> str:
        if self.kind == "flatten":
            return "flatten()"
        if self.kind == "uniform_shape":
            return f"uniform_shape({self.size})"
        return f"uniform_occupancy({self.leader}.{self.size})"


def _parse_rank_key(key: str) -> Tuple[str, ...]:
    """Parse a partitioning key: ``K`` or ``(K, M)``."""
    key = str(key).strip()
    if key.startswith("(") and key.endswith(")"):
        parts = tuple(p.strip() for p in key[1:-1].split(","))
        if len(parts) < 2 or not all(parts):
            raise SpecError("mapping", f"bad rank tuple {key!r}")
        return parts
    return (key,)


@dataclass(frozen=True)
class SpacetimeRank:
    """A loop rank scheduled in space or time.

    The optional stamp style (``N.coord`` vs default position-based stamps)
    follows the SIGMA spec in Figure 8c.
    """

    rank: str
    style: str = "pos"  # 'pos' | 'coord'

    @classmethod
    def parse(cls, text: str) -> "SpacetimeRank":
        text = str(text).strip()
        if "." in text:
            rank, style = text.split(".", 1)
            if style not in ("pos", "coord"):
                raise SpecError("mapping", f"bad spacetime style {text!r}")
            return cls(rank, style)
        return cls(text)

    def __str__(self) -> str:
        return self.rank if self.style == "pos" else f"{self.rank}.{self.style}"


@dataclass
class EinsumMapping:
    """Mapping attributes of a single Einsum."""

    name: str
    loop_order: List[str] = field(default_factory=list)
    partitioning: List[Tuple[Tuple[str, ...], List[PartitionDirective]]] = field(
        default_factory=list
    )
    space: List[SpacetimeRank] = field(default_factory=list)
    time: List[SpacetimeRank] = field(default_factory=list)

    @property
    def space_ranks(self) -> List[str]:
        return [s.rank for s in self.space]

    @property
    def time_ranks(self) -> List[str]:
        return [t.rank for t in self.time]

    def partitioned_loop_ranks(self, base_ranks: Sequence[str]) -> List[str]:
        """Ranks of the iteration space after applying partitioning.

        Starting from the Einsum's base ranks, flatten directives merge rank
        groups and split directives replace a rank with its split names.
        """
        ranks = list(base_ranks)
        for key, directives in self.partitioning:
            flattens = [d for d in directives if d.kind == "flatten"]
            splits = [d for d in directives if d.kind != "flatten"]
            if flattens:
                if len(key) < 2:
                    raise SpecError(
                        "mapping", f"flatten() on single rank {key[0]!r}"
                    )
                pos = ranks.index(key[0])
                for r in key:
                    ranks.remove(r)
                ranks.insert(pos, flatten_name(key))
            if splits:
                target = flatten_name(key) if flattens else key[0]
                pos = ranks.index(target)
                ranks[pos : pos + 1] = split_names(target, len(splits))
        return ranks

    def validate_against(self, base_ranks: Sequence[str]) -> None:
        expected = set(self.partitioned_loop_ranks(base_ranks))
        if self.loop_order and set(self.loop_order) != expected:
            raise SpecError(
                "mapping",
                f"loop-order for {self.name} is {self.loop_order} but the "
                f"partitioned iteration space has ranks {sorted(expected)}",
            )
        st = set(self.space_ranks) | set(self.time_ranks)
        if (self.space or self.time) and st != set(self.loop_order):
            raise SpecError(
                "mapping",
                f"spacetime of {self.name} covers {sorted(st)}, expected "
                f"exactly the loop-order ranks {self.loop_order}",
            )


@dataclass
class MappingSpec:
    """The full mapping block: per-tensor rank orders + per-Einsum mappings."""

    rank_order: Dict[str, List[str]] = field(default_factory=dict)
    einsums: Dict[str, EinsumMapping] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: dict) -> "MappingSpec":
        data = data or {}
        rank_order = {
            str(t): [str(r) for r in ranks]
            for t, ranks in (data.get("rank-order") or {}).items()
        }
        partitioning = data.get("partitioning") or {}
        loop_order = data.get("loop-order") or {}
        spacetime = data.get("spacetime") or {}

        names = set(partitioning) | set(loop_order) | set(spacetime)
        einsums = {}
        for name in names:
            part_block = partitioning.get(name) or {}
            parsed_part = [
                (
                    _parse_rank_key(key),
                    [PartitionDirective.parse(d) for d in directives],
                )
                for key, directives in part_block.items()
            ]
            st = spacetime.get(name) or {}
            einsums[str(name)] = EinsumMapping(
                name=str(name),
                loop_order=[str(r) for r in (loop_order.get(name) or [])],
                partitioning=parsed_part,
                space=[SpacetimeRank.parse(r) for r in (st.get("space") or [])],
                time=[SpacetimeRank.parse(r) for r in (st.get("time") or [])],
            )
        return cls(rank_order, einsums)

    def for_einsum(self, name: str) -> EinsumMapping:
        """Mapping for one Einsum (an empty default when unspecified)."""
        return self.einsums.get(name) or EinsumMapping(name=name)

    def rank_order_of(self, tensor: str, declared: Sequence[str]) -> List[str]:
        return list(self.rank_order.get(tensor, list(declared)))
