"""The ``einsum`` specification: tensor declarations plus the cascade.

Mirrors the top block of paper Figure 3::

    einsum:
      declaration:
        A: [K, M]
        B: [K, N]
        T: [K, M, N]
        Z: [M, N]
      expressions:
        - T[k, m, n] = A[k, m] * B[k, n]
        - Z[m, n] = T[k, m, n]

Declarations list each tensor's ranks alphabetically (the paper's
convention); the mapping's ``rank-order`` chooses the actual fibertree
level order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..einsum import Cascade, parse_cascade
from ..einsum.ast import Access, Add, Einsum, IndexExpr, Mul, Take
from ..fibertree.rankid import rank_of_var
from .errors import SpecError


def _normalize_bare_accesses(cascade: Cascade,
                             declaration: Dict[str, List[str]]) -> Cascade:
    """Expand whole-tensor accesses (``P1 = P0``) to explicit indices.

    A bare access means "all declared ranks, in order"; resolving it here
    lets the rest of the stack assume every access carries indices.
    """

    def expand_access(acc: Access) -> Access:
        if acc.indices is not None:
            return acc
        ranks = declaration.get(acc.tensor)
        if ranks is None:
            raise SpecError(
                "einsum", f"tensor {acc.tensor} used but not declared"
            )
        return Access(
            acc.tensor, tuple(IndexExpr.var(r.lower()) for r in ranks)
        )

    def expand(node):
        if isinstance(node, Access):
            return expand_access(node)
        if isinstance(node, Mul):
            return Mul(tuple(expand(f) for f in node.factors))
        if isinstance(node, Add):
            return Add(expand(node.left), expand(node.right), node.negate)
        if isinstance(node, Take):
            return Take(tuple(expand_access(a) for a in node.args),
                        node.which)
        raise SpecError("einsum", f"unknown expression node {node!r}")

    return Cascade([
        Einsum(expand_access(e.output), expand(e.expr)) for e in cascade
    ])


@dataclass
class EinsumSpec:
    """Validated declaration + cascade."""

    declaration: Dict[str, List[str]]
    cascade: Cascade
    # Optional explicit rank shapes (needed only for ranks that cannot be
    # inferred from input data, e.g. the Q of a convolution output).
    shapes: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: dict) -> "EinsumSpec":
        if "declaration" not in data:
            raise SpecError("einsum", "missing 'declaration'")
        if "expressions" not in data:
            raise SpecError("einsum", "missing 'expressions'")
        declaration = {
            str(t): [str(r) for r in ranks]
            for t, ranks in data["declaration"].items()
        }
        cascade = parse_cascade([str(e) for e in data["expressions"]])
        shapes = {str(r): int(s) for r, s in data.get("shapes", {}).items()}
        cascade = _normalize_bare_accesses(cascade, declaration)
        spec = cls(declaration, cascade, shapes)
        spec.validate()
        return spec

    def validate(self) -> None:
        for einsum in self.cascade:
            for acc in [einsum.output, *self._expr_accesses(einsum)]:
                if acc.tensor not in self.declaration:
                    raise SpecError(
                        "einsum", f"tensor {acc.tensor} used but not declared"
                    )
                declared = self.declaration[acc.tensor]
                if acc.indices is not None and len(acc.indices) != len(declared):
                    raise SpecError(
                        "einsum",
                        f"access {acc} has {len(acc.indices)} indices but "
                        f"{acc.tensor} declares ranks {declared}",
                    )

    @staticmethod
    def _expr_accesses(einsum):
        from ..einsum.ast import accesses

        return list(accesses(einsum.expr))

    def ranks_of(self, tensor: str) -> List[str]:
        try:
            return list(self.declaration[tensor])
        except KeyError:
            raise SpecError("einsum", f"unknown tensor {tensor!r}") from None

    def einsum_ranks(self, name: str) -> List[str]:
        """All iteration-space ranks of one Einsum (upper-cased variables)."""
        return [rank_of_var(v) for v in self.cascade[name].all_vars]

    @property
    def tensors(self) -> List[str]:
        return list(self.declaration)
