"""ExTensor [16]: tiled inner-product SpMSpM with hierarchical skip-ahead
intersection.

Einsum/mapping follow Figure 8b (uniform shape-based partitioning of all
three dimensions with symbolic tile sizes); the architecture realizes
Table 5 (128 PEs at 1 GHz, 64 kB per-PE buffers, a 30 MB last-level buffer,
68.256 GB/s of memory bandwidth).  Hierarchical intersection is implicit in
fibertree co-iteration semantics; the skip-ahead intersection unit prices
it (paper section 5).

The binding gives each operand the reuse the paper describes: an A tile is
kept in the LLC across the ``N1`` loop (evict on ``M1``), a B tile across
the ``M2``/``M1`` loops (evict on ``K2``), and the Z tile accumulates in
the LLC across ``K2`` iterations — whose drains/refills are exactly the
partial-output (PO) traffic of Figure 9a.
"""

from __future__ import annotations

from ..spec import AcceleratorSpec, load_spec

YAML = """
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  expressions:
    - Z[m, n] = A[k, m] * B[k, n]
mapping:
  rank-order:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  partitioning:
    Z:
      K:
        - uniform_shape(K1)
        - uniform_shape(K0)
      M:
        - uniform_shape(M1)
        - uniform_shape(M0)
      N:
        - uniform_shape(N1)
        - uniform_shape(N0)
  loop-order:
    Z: [N2, K2, M2, M1, N1, K1, M0, N0, K0]
  spacetime:
    Z:
      space: [K1]
      time: [N2, K2, M2, M1, N1, M0, N0, K0]
format:
  A:
    CSF:
      K: {format: U, pbits: 32}
      M: {format: C, cbits: 32, pbits: 64}
  B:
    CSF:
      K: {format: U, pbits: 32}
      N: {format: C, cbits: 32, pbits: 64}
  Z:
    CSF:
      M: {format: U, pbits: 32}
      N: {format: C, cbits: 32, pbits: 64}
architecture:
  ExTensor:
    clock: 1.0e9
    subtree:
      - name: System
        local:
          - name: DRAM
            class: DRAM
            attributes: {bandwidth: 68.256}
          - name: LLB
            class: Buffer
            attributes: {type: buffet, width: 512, depth: 491520,
                         bandwidth: 1024}
        subtree:
          - name: PE
            num: 128
            local:
              - name: PEB
                class: Buffer
                attributes: {type: buffet, width: 64, depth: 8192}
              - name: SkipAhead
                class: Intersection
                attributes: {type: skip-ahead}
              - name: FPU
                class: Compute
                attributes: {type: mul}
binding:
  Z:
    config: ExTensor
    components:
      LLB:
        - tensor: A
          rank: M
          type: elem
          style: lazy
          evict-on: M1
          config: CSF
        - tensor: B
          rank: N
          type: elem
          style: lazy
          evict-on: K2
          config: CSF
        - tensor: Z
          rank: N
          type: elem
          style: lazy
          evict-on: K2
          config: CSF
      SkipAhead:
        - op: intersect
          rank: K0
      FPU:
        - op: mul
"""


def spec(
    k1: int = 256, k0: int = 32,
    m1: int = 256, m0: int = 32,
    n1: int = 256, n0: int = 32,
) -> AcceleratorSpec:
    """The ExTensor accelerator spec (Figure 8b + Table 5).

    Tile shapes are symbolic in the YAML (``uniform_shape(K1)``) and bound
    here; defaults suit the scaled-down validation workloads.
    """
    return load_spec(YAML, name="extensor").with_params(
        K1=k1, K0=k0, M1=m1, M0=m0, N1=n1, N0=n0
    )
