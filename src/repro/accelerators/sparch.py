"""SpArch [56]: outer-product SpMSpM with a pipelined parallel merge.

Table 1: "Outer Product with parallel merge ... optimized RAM interface in
sum phase".  The cascade is OuterSPACE's multiply-merge, but where
OuterSPACE serializes the two phases through DRAM, SpArch's huge
comparator array merges partial products as they stream — expressed here
as the same two Einsums with matching temporal prefixes (so they fuse)
and the intermediate pinned on-chip ahead of a high-radix merger.
"""

from __future__ import annotations

from ..spec import AcceleratorSpec, load_spec

YAML_TEMPLATE = """
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    T: [K, M, N]
    Z: [M, N]
  expressions:
    - T[k, m, n] = A[k, m] * B[k, n]
    - Z[m, n] = T[k, m, n]
mapping:
  rank-order:
    A: [K, M]
    B: [K, N]
    T: [M, K, N]
    Z: [M, N]
  partitioning:
    T:
      K: [uniform_occupancy(A.{merge_way})]
    Z:
      K: [uniform_occupancy(T.{merge_way})]
  loop-order:
    T: [K1, K0, M, N]
    Z: [K1, K0, M, N]
  spacetime:
    T:
      space: [K0]
      time: [K1, M, N]
    Z:
      space: [K0]
      time: [K1, M, N]
format:
  A:
    CSC:
      K: {{format: U, pbits: 32}}
      M: {{format: C, cbits: 32, pbits: 64}}
  B:
    CSR:
      K: {{format: U, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64}}
  T:
    OnChip:
      M: {{format: C, cbits: 32, pbits: 32}}
      K: {{format: C, cbits: 32, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64}}
  Z:
    CSR:
      M: {{format: U, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64}}
architecture:
  SpArch:
    clock: 1.0e9
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes: {{bandwidth: 128}}
          - name: MergeBuf
            class: Buffer
            attributes: {{type: buffet, width: 512, depth: 8192}}
        subtree:
          - name: MergerTree
            local:
              - name: Comparators
                class: Merger
                attributes: {{inputs: 64, comparator_radix: 64,
                              outputs: 16, order: opt, reduce: true}}
              - name: Mult
                class: Compute
                attributes: {{type: mul}}
binding:
  T:
    config: SpArch
    components:
      MergeBuf:
        - tensor: T
          rank: root
          type: subtree
          spill: false
          config: OnChip
      Mult:
        - op: mul
  Z:
    config: SpArch
    components:
      MergeBuf:
        - tensor: T
          rank: root
          type: subtree
          spill: false
          config: OnChip
      Comparators:
        - op: swizzle
          tensor: T
"""


def spec(merge_way: int = 64) -> AcceleratorSpec:
    """The SpArch pipelined multiply-merge spec."""
    return load_spec(YAML_TEMPLATE.format(merge_way=merge_way),
                     name="sparch")
