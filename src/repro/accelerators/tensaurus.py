"""Tensaurus [43]: mixed sparse-dense tensor kernels via the SF3 dataflow.

Table 1/2: Tensaurus's scalar-fiber x fiber-fiber product applies one
Einsum form to several kernels; the headline one is MTTKRP
(``C[i,r] = T[i,j,k] * B[j,r] * A[k,r]``).  The sparse tensor T drives
iteration; the dense factor matrices are looked up per nonzero — which is
precisely how the loop nest below executes on fibertrees.
"""

from __future__ import annotations

from ..spec import AcceleratorSpec, load_spec

YAML = """
einsum:
  declaration:
    T: [I, J, K]
    A: [K, R]
    B: [J, R]
    C: [I, R]
  expressions:
    - C[i, r] = T[i, j, k] * B[j, r] * A[k, r]
mapping:
  rank-order:
    T: [I, J, K]
    A: [K, R]
    B: [J, R]
    C: [I, R]
  loop-order:
    C: [I, J, K, R]
  spacetime:
    C:
      space: [R]
      time: [I, J, K]
format:
  T:
    CSF:
      I: {format: C, cbits: 32, pbits: 32}
      J: {format: C, cbits: 32, pbits: 32}
      K: {format: C, cbits: 32, pbits: 64}
  A:
    Dense:
      K: {format: U, pbits: 0}
      R: {format: U, cbits: 0, pbits: 64}
  B:
    Dense:
      J: {format: U, pbits: 0}
      R: {format: U, cbits: 0, pbits: 64}
  C:
    Dense:
      I: {format: U, pbits: 0}
      R: {format: U, cbits: 0, pbits: 64}
architecture:
  Tensaurus:
    clock: 2.0e9
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes: {bandwidth: 512}
          - name: SPM
            class: Buffer
            attributes: {type: buffet, width: 512, depth: 4096}
        subtree:
          - name: PE
            num: 8
            local:
              - name: MACC
                class: Compute
                attributes: {type: mul}
binding:
  C:
    config: Tensaurus
    components:
      SPM:
        - tensor: B
          rank: J
          type: elem
          style: eager
          config: Dense
        - tensor: A
          rank: K
          type: elem
          style: eager
          config: Dense
        - tensor: C
          rank: R
          type: elem
          style: lazy
          evict-on: I
          config: Dense
      MACC:
        - op: mul
"""


def spec() -> AcceleratorSpec:
    """The Tensaurus MTTKRP spec (SF3 dataflow)."""
    return load_spec(YAML, name="tensaurus")
