"""OuterSPACE [34]: outer-product SpMSpM with multiply-merge phases.

The einsum/mapping blocks are the paper's Figure 3 verbatim; the format
block follows Figure 5b (the array-of-linked-lists representation of the
partial-product tensor T); the architecture and binding blocks realize the
Table 5 configuration (16 processing tiles of 16 PEs at 1.5 GHz, 16 kB L0
per PT, HBM at 16 x 8 GB/s), with a distinct topology per phase because
OuterSPACE reorganizes itself between multiply and merge.

``spec()`` accepts scaled-down partitioning sizes so the model runs on
laptop-sized workloads; defaults are the paper's values.
"""

from __future__ import annotations

from ..spec import AcceleratorSpec, load_spec

YAML_TEMPLATE = """
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    T: [K, M, N]
    Z: [M, N]
  expressions:
    - T[k, m, n] = A[k, m] * B[k, n]
    - Z[m, n] = T[k, m, n]
mapping:
  rank-order:
    A: [K, M]
    B: [K, N]
    T: [M, K, N]
    Z: [M, N]
  partitioning:
    T:
      (K, M): [flatten()]
      KM: [uniform_occupancy(A.{mult_outer}), uniform_occupancy(A.{mult_inner})]
    Z:
      M: [uniform_occupancy(T.{merge_outer}), uniform_occupancy(T.{merge_inner})]
  loop-order:
    T: [KM2, KM1, KM0, N]
    Z: [M2, M1, M0, N, K]
  spacetime:
    T:
      space: [KM1, KM0]
      time: [KM2, N]
    Z:
      space: [M1, M0]
      time: [M2, N, K]
format:
  A:
    CSC:
      K: {{format: U, pbits: 32}}
      M: {{format: C, cbits: 32, pbits: 64}}
  B:
    CSR:
      K: {{format: U, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64}}
  T:
    LinkedLists:
      M: {{format: U, pbits: 32}}
      K: {{format: C, cbits: 32, pbits: 32}}
      N: {{format: C, fhbits: 32, layout: interleaved, cbits: 32, pbits: 64}}
  Z:
    CSR:
      M: {{format: U, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64}}
architecture:
  MultiplyPhase:
    clock: 1.5e9
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes: {{bandwidth: 128}}
        subtree:
          - name: PT
            num: 16
            local:
              - name: L0Cache
                class: Buffer
                attributes: {{type: cache, width: 64, depth: 2048}}
            subtree:
              - name: PE
                num: 16
                local:
                  - name: RegFile
                    class: Buffer
                    attributes: {{type: buffet, width: 64, depth: 64}}
                  - name: Mult
                    class: Compute
                    attributes: {{type: mul}}
  MergePhase:
    clock: 1.5e9
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes: {{bandwidth: 128}}
        subtree:
          - name: PT
            num: 16
            local:
              - name: CacheSPM
                class: Buffer
                attributes: {{type: buffet, width: 64, depth: 2048}}
            subtree:
              - name: PE
                num: 8
                local:
                  - name: RegFileM
                    class: Buffer
                    attributes: {{type: buffet, width: 64, depth: 64}}
                  - name: SortALU
                    class: Compute
                    attributes: {{type: add}}
                  - name: SortNet
                    class: Merger
                    attributes: {{inputs: 16, comparator_radix: 2,
                                  outputs: 1, order: fifo, reduce: true}}
binding:
  T:
    config: MultiplyPhase
    components:
      L0Cache:
        - tensor: B
          rank: K
          type: elem
          style: eager
          config: CSR
      RegFile:
        - tensor: A
          rank: M
          type: elem
          style: lazy
          evict-on: KM1
          config: CSC
      Mult:
        - op: mul
  Z:
    config: MergePhase
    components:
      CacheSPM:
        - tensor: T
          rank: N
          type: elem
          style: lazy
          evict-on: M0
          config: LinkedLists
      RegFileM:
        - tensor: Z
          rank: N
          type: elem
          style: lazy
          evict-on: N
          config: CSR
      SortALU:
        - op: add
      SortNet:
        - op: swizzle
          tensor: T
"""


def spec(
    mult_outer: int = 256,
    mult_inner: int = 16,
    merge_outer: int = 128,
    merge_inner: int = 8,
) -> AcceleratorSpec:
    """The OuterSPACE accelerator spec (Figure 3 + Table 5).

    The four sizes are the occupancy-partitioning factors of the multiply
    and merge phases (paper defaults: 256/16 and 128/8).  Pass smaller
    values to scale the model down with small workloads.
    """
    text = YAML_TEMPLATE.format(
        mult_outer=mult_outer,
        mult_inner=mult_inner,
        merge_outer=merge_outer,
        merge_inner=merge_inner,
    )
    return load_spec(text, name="outerspace")
