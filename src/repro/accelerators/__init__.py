"""Packaged specs for the accelerators modeled in the paper."""

from . import (
    extensor,
    eyeriss,
    flexagon,
    gamma,
    matraptor,
    outerspace,
    sigma,
    sparch,
    tensaurus,
)
from .cascades import TABLE2_CASCADES
from .configs import TABLE5, HardwareConfig
from .registry import FACTORIES, accelerator

__all__ = [
    "FACTORIES",
    "HardwareConfig",
    "TABLE2_CASCADES",
    "TABLE5",
    "accelerator",
    "extensor",
    "eyeriss",
    "flexagon",
    "gamma",
    "matraptor",
    "outerspace",
    "sigma",
    "sparch",
    "tensaurus",
]
