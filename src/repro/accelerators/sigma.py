"""SIGMA [38]: sparse GEMM on a flexible PE fabric with bitmap formats.

Einsum/mapping follow Figure 8c: a two-stage ``take()`` cascade first marks
the K-rows of B that are nonempty (S), filters A down to the elements whose
row survives (T), then multiplies.  Occupancy partitioning of the flattened
``(M, K0)`` rank distributes only *nonzero* stationary elements across the
PE array — SIGMA's headline feature.

Architecture per Table 5: 128 FlexDPEs x 128 PEs at 500 MHz, 32 MB data
SRAM, 4 MB bitmap SRAM, 960 GB/s SRAM bandwidth, 1 TB/s HBM.  The
``N.coord`` spacetime stamp in the mapping models SIGMA's time alignment
by coordinate rather than position (section 5).
"""

from __future__ import annotations

from ..spec import AcceleratorSpec, load_spec

YAML_TEMPLATE = """
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    S: [K, M]
    T: [K, M]
    Z: [M, N]
  expressions:
    - S[k, m] = take(A[k, m], B[k, n], 0)
    - T[k, m] = take(A[k, m], S[k, m], 0)
    - Z[m, n] = T[k, m] * B[k, n]
mapping:
  rank-order:
    A: [K, M]
    B: [K, N]
    S: [K, M]
    T: [K, M]
    Z: [M, N]
  partitioning:
    Z:
      K: [uniform_shape({k_tile})]
      (M, K0): [flatten()]
      MK0: [uniform_occupancy(T.{pe_array})]
  loop-order:
    S: [K, M, N]
    T: [K, M]
    Z: [K1, MK01, MK00, N]
  spacetime:
    S:
      space: []
      time: [K, M, N]
    T:
      space: []
      time: [K, M]
    Z:
      space: [MK00]
      time: [K1, MK01, N.coord]
format:
  A:
    Bitmap:
      K: {{format: U, pbits: 0}}
      M: {{format: B, cbits: 1, pbits: 64}}
  B:
    Bitmap:
      K: {{format: U, pbits: 0}}
      N: {{format: B, cbits: 1, pbits: 64}}
  S:
    Bitmap:
      K: {{format: U, pbits: 0}}
      M: {{format: B, cbits: 1, pbits: 0}}
  T:
    Bitmap:
      K: {{format: U, pbits: 0}}
      M: {{format: B, cbits: 1, pbits: 64}}
  Z:
    Dense:
      M: {{format: U, pbits: 0}}
      N: {{format: U, cbits: 0, pbits: 64}}
architecture:
  SIGMA:
    clock: 5.0e8
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes: {{bandwidth: 1024}}
          - name: DataSRAM
            class: Buffer
            attributes: {{type: buffet, width: 512, depth: 524288,
                          bandwidth: 960}}
          - name: BitmapSRAM
            class: Buffer
            attributes: {{type: buffet, width: 512, depth: 65536,
                          bandwidth: 960}}
        subtree:
          - name: FlexDPE
            num: 128
            local:
              - name: Distributor
                class: Sequencer
                attributes: {{num_ranks: 2}}
            subtree:
              - name: PE
                num: 128
                local:
                  - name: MACC
                    class: Compute
                    attributes: {{type: mul}}
binding:
  S:
    config: SIGMA
    components:
      BitmapSRAM:
        - tensor: A
          rank: M
          type: coord
          style: lazy
          config: Bitmap
        - tensor: B
          rank: N
          type: coord
          style: lazy
          config: Bitmap
        - tensor: S
          rank: root
          type: subtree
          spill: false
          config: Bitmap
  T:
    config: SIGMA
    components:
      BitmapSRAM:
        - tensor: S
          rank: root
          type: subtree
          spill: false
          config: Bitmap
        - tensor: T
          rank: root
          type: subtree
          spill: false
          config: Bitmap
      DataSRAM:
        - tensor: A
          rank: M
          type: payload
          style: lazy
          config: Bitmap
  Z:
    config: SIGMA
    components:
      DataSRAM:
        - tensor: T
          rank: root
          type: subtree
          spill: false
          config: Bitmap
        - tensor: B
          rank: N
          type: elem
          style: lazy
          evict-on: K1
          config: Bitmap
        - tensor: Z
          rank: N
          type: elem
          style: lazy
          evict-on: K1
          config: Dense
      Distributor:
        - op: sequence
      MACC:
        - op: mul
"""


def spec(k_tile: int = 128, pe_array: int = 16384) -> AcceleratorSpec:
    """The SIGMA accelerator spec (Figure 8c + Table 5).

    ``k_tile`` is the shape-based K split (128 in the paper);
    ``pe_array`` the occupancy chunk distributed across the PE fabric
    (16384 = 128 FlexDPEs x 128 PEs in the paper).
    """
    text = YAML_TEMPLATE.format(k_tile=k_tile, pe_array=pe_array)
    return load_spec(text, name="sigma")
