"""Table 5: hardware configurations of the modeled accelerators.

These constants parameterize the architecture blocks of the accelerator
specs and are printed by ``benchmarks/bench_table5.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class HardwareConfig:
    name: str
    clock_hz: float
    description: str
    attributes: Dict[str, object] = field(default_factory=dict)


TABLE5: Dict[str, HardwareConfig] = {
    "extensor": HardwareConfig(
        name="ExTensor",
        clock_hz=1.0e9,
        description=(
            "1 GHz clock speed, 128 PEs, 64 kB PE buffer per PE, 30 MB LLC, "
            "68.256 GB/s memory bandwidth"
        ),
        attributes={
            "pes": 128,
            "pe_buffer_bytes": 64 * 1024,
            "llc_bytes": 30 * 1024 * 1024,
            "dram_gbps": 68.256,
        },
    ),
    "gamma": HardwareConfig(
        name="Gamma",
        clock_hz=1.0e9,
        description=(
            "1 GHz clock speed, 64-way merger per PE, 32 PEs, 3 MB "
            "FiberCache, 16 64-bit HBM channels, 8 GB/s/channel"
        ),
        attributes={
            "pes": 32,
            "merger_way": 64,
            "fibercache_bytes": 3 * 1024 * 1024,
            "dram_gbps": 128.0,
        },
    ),
    "outerspace": HardwareConfig(
        name="OuterSPACE",
        clock_hz=1.5e9,
        description=(
            "1.5 GHz clock speed, 16 PEs per PT, 16 PTs, 16 kB L0 cache per "
            "PT, 4 kB L1 cache per 4 PTs, 16 64-bit HBM channels, "
            "8000 MB/s/channel"
        ),
        attributes={
            "pes": 256,
            "pts": 16,
            "l0_bytes": 16 * 1024,
            "l1_bytes": 4 * 1024,
            "dram_gbps": 128.0,
        },
    ),
    "sigma": HardwareConfig(
        name="SIGMA",
        clock_hz=5.0e8,
        description=(
            "500 MHz clock speed, 128 PEs per FlexDPE, 128 FlexDPEs, 32 MB "
            "Data SRAM, 4 MB Bitmap SRAM, 960 GB/s SRAM bandwidth, "
            "1024 GB/s HBM bandwidth"
        ),
        attributes={
            "pes": 128 * 128,
            "data_sram_bytes": 32 * 1024 * 1024,
            "bitmap_sram_bytes": 4 * 1024 * 1024,
            "sram_gbps": 960.0,
            "dram_gbps": 1024.0,
        },
    ),
    "graphicionado": HardwareConfig(
        name="Graphicionado",
        clock_hz=1.0e9,
        description=(
            "1 GHz clock speed, 8 streams, 64 MB eDRAM, 68 GB/s memory "
            "bandwidth"
        ),
        attributes={
            "streams": 8,
            "edram_bytes": 64 * 1024 * 1024,
            "dram_gbps": 68.0,
        },
    ),
}
