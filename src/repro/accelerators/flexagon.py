"""Flexagon [30]: a multi-dataflow SpMSpM accelerator.

The paper lists Flexagon among its additionally modeled designs
(section 5).  Flexagon's defining feature is that one piece of hardware
runs SpMSpM under *three* dataflows — inner product, outer product, or
Gustavson (row-wise) — chosen per workload.  In TeAAL terms that is one
Einsum with three alternative mappings: the einsum/format/architecture
levels are shared and only the mapping block changes, a direct showcase of
the specification hierarchy's separation of concerns (section 4.1.4).
"""

from __future__ import annotations

from ..spec import AcceleratorSpec, load_spec

_EINSUM = """
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  expressions:
    - Z[m, n] = A[k, m] * B[k, n]
"""

_MAPPINGS = {
    # Inner product: Z-stationary, co-iterate A and B along K innermost.
    "inner": """
mapping:
  rank-order:
    A: [M, K]
    B: [N, K]
    Z: [M, N]
  loop-order:
    Z: [M, N, K]
  spacetime:
    Z:
      space: [N]
      time: [M, K]
""",
    # Outer product: K outermost, rank-1 updates of Z.
    "outer": """
mapping:
  rank-order:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  loop-order:
    Z: [K, M, N]
  spacetime:
    Z:
      space: [M]
      time: [K, N]
""",
    # Gustavson: rows of A select rows of B (row-wise product).
    "gustavson": """
mapping:
  rank-order:
    A: [M, K]
    B: [K, N]
    Z: [M, N]
  loop-order:
    Z: [M, K, N]
  spacetime:
    Z:
      space: [K]
      time: [M, N]
""",
}

_BACKEND = """
format:
  A:
    CSF:
      M: {format: U, pbits: 32}
      K: {format: C, cbits: 32, pbits: 64}
  B:
    CSF:
      K: {format: U, pbits: 32}
      N: {format: C, cbits: 32, pbits: 64}
  Z:
    CSF:
      M: {format: U, pbits: 32}
      N: {format: C, cbits: 32, pbits: 64}
architecture:
  Flexagon:
    clock: 1.0e9
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes: {bandwidth: 128}
          - name: MRN
            class: Buffer
            attributes: {type: cache, width: 512, depth: 16384}
        subtree:
          - name: PE
            num: 64
            local:
              - name: FPU
                class: Compute
                attributes: {type: mul}
binding:
  Z:
    config: Flexagon
    components:
      MRN:
        - tensor: B
          rank: K
          type: elem
          style: eager
          config: CSF
      FPU:
        - op: mul
"""

DATAFLOWS = tuple(_MAPPINGS)


def spec(dataflow: str = "gustavson") -> AcceleratorSpec:
    """Flexagon under one of its three dataflows.

    ``dataflow`` is ``inner``, ``outer``, or ``gustavson``; everything but
    the mapping block is identical across the three.
    """
    try:
        mapping = _MAPPINGS[dataflow]
    except KeyError:
        raise KeyError(
            f"unknown dataflow {dataflow!r}; known: {sorted(_MAPPINGS)}"
        ) from None
    text = _EINSUM + mapping + _BACKEND
    return load_spec(text, name=f"flexagon-{dataflow}")
