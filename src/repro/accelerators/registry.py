"""Registry of fully-modeled accelerator specs."""

from __future__ import annotations

from typing import Callable, Dict

from ..spec import AcceleratorSpec
from . import (
    extensor,
    eyeriss,
    flexagon,
    gamma,
    matraptor,
    outerspace,
    sigma,
    sparch,
    tensaurus,
)

FACTORIES: Dict[str, Callable[..., AcceleratorSpec]] = {
    "extensor": extensor.spec,
    "eyeriss": eyeriss.spec,
    "flexagon": flexagon.spec,
    "gamma": gamma.spec,
    "matraptor": matraptor.spec,
    "outerspace": outerspace.spec,
    "sigma": sigma.spec,
    "sparch": sparch.spec,
    "tensaurus": tensaurus.spec,
}


def accelerator(name: str, **params) -> AcceleratorSpec:
    """Instantiate a modeled accelerator spec by name."""
    try:
        factory = FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown accelerator {name!r}; known: {sorted(FACTORIES)}"
        ) from None
    return factory(**params)
