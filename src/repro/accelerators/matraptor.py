"""MatRaptor [42]: row-wise product SpMSpM with parallel summation.

Table 1: "Row-wise Product with parallel summation ... co-design of
micro-architecture and C2SR format".  As a cascade it is Gustavson's
algorithm like Gamma, but without the take() prefetch stage — partial
rows stream into per-PE sorting queues (modeled as a merger) and rows of
A are distributed round-robin across PEs (an occupancy split of M).
C2SR — channel-cyclic sparse rows — manifests as the format block's
per-rank widths; its channel interleaving is a layout attribute.
"""

from __future__ import annotations

from ..spec import AcceleratorSpec, load_spec

YAML_TEMPLATE = """
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  expressions:
    - Z[m, n] = A[k, m] * B[k, n]
mapping:
  rank-order:
    A: [M, K]
    B: [K, N]
    Z: [M, N]
  partitioning:
    Z:
      M: [uniform_occupancy(A.{pe_rows})]
  loop-order:
    Z: [M1, M0, K, N]
  spacetime:
    Z:
      space: [M0]
      time: [M1, K, N]
format:
  A:
    C2SR:
      M: {{format: U, pbits: 32}}
      K: {{format: C, cbits: 32, pbits: 64, layout: interleaved}}
  B:
    C2SR:
      K: {{format: U, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64, layout: interleaved}}
  Z:
    C2SR:
      M: {{format: U, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64, layout: interleaved}}
architecture:
  MatRaptor:
    clock: 2.0e9
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes: {{bandwidth: 128}}
        subtree:
          - name: PE
            num: 8
            local:
              - name: RowBuf
                class: Buffer
                attributes: {{type: buffet, width: 64, depth: 1024}}
              - name: SortQueues
                class: Merger
                attributes: {{inputs: 10, comparator_radix: 2, outputs: 1,
                              order: fifo, reduce: true}}
              - name: FPU
                class: Compute
                attributes: {{type: mul}}
binding:
  Z:
    config: MatRaptor
    components:
      RowBuf:
        - tensor: Z
          rank: N
          type: elem
          style: lazy
          evict-on: M0
          config: C2SR
      SortQueues:
        - op: swizzle
          tensor: Z
      FPU:
        - op: mul
"""


def spec(pe_rows: int = 8) -> AcceleratorSpec:
    """The MatRaptor row-wise SpMSpM spec."""
    return load_spec(YAML_TEMPLATE.format(pe_rows=pe_rows),
                     name="matraptor")
