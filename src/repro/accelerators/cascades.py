"""Table 2: cascades of Einsums for various accelerators and algorithms.

Each entry is an einsum-level spec (declaration + expressions [+ shapes])
exercised by tests and ``benchmarks/bench_table2.py``; the four fully
modeled accelerators (ExTensor, Gamma, OuterSPACE, SIGMA) additionally have
complete five-level specs in their own modules.
"""

from __future__ import annotations

from typing import Dict

TABLE2_CASCADES: Dict[str, dict] = {
    "extensor_spmspm": {
        "declaration": {"A": ["K", "M"], "B": ["K", "N"], "Z": ["M", "N"]},
        "expressions": ["Z[m, n] = A[k, m] * B[k, n]"],
    },
    "gamma_spmspm": {
        "declaration": {
            "A": ["K", "M"], "B": ["K", "N"],
            "T": ["K", "M", "N"], "Z": ["M", "N"],
        },
        "expressions": [
            "T[k, m, n] = take(A[k, m], B[k, n], 1)",
            "Z[m, n] = A[k, m] * T[k, m, n]",
        ],
    },
    "outerspace_spmspm": {
        "declaration": {
            "A": ["K", "M"], "B": ["K", "N"],
            "T": ["K", "M", "N"], "Z": ["M", "N"],
        },
        "expressions": [
            "T[k, m, n] = A[k, m] * B[k, n]",
            "Z[m, n] = T[k, m, n]",
        ],
    },
    "sigma_spmspm": {
        "declaration": {
            "A": ["K", "M"], "B": ["K", "N"],
            "S": ["K", "M"], "T": ["K", "M"], "Z": ["M", "N"],
        },
        "expressions": [
            "S[k, m] = take(A[k, m], B[k, n], 0)",
            "T[k, m] = take(A[k, m], S[k, m], 0)",
            "Z[m, n] = T[k, m] * B[k, n]",
        ],
    },
    "eyeriss_conv": {
        "declaration": {
            "I": ["B", "C", "H", "W"],
            "F": ["C", "M", "R", "S"],
            "O": ["B", "M", "P", "Q"],
        },
        "expressions": [
            "O[b, m, p, q] = I[b, c, p + r, q + s] * F[c, m, r, s]"
        ],
        "shapes": {"P": 4, "Q": 4},
    },
    "toeplitz_conv": {
        "declaration": {
            "I": ["B", "C", "H", "W"],
            "T": ["B", "C", "P", "Q", "R", "S"],
            "F": ["C", "M", "R", "S"],
            "O": ["B", "M", "P", "Q"],
        },
        "expressions": [
            "T[b, c, p, q, r, s] = I[b, c, p + r, q + s]",
            "O[b, m, p, q] = T[b, c, p, q, r, s] * F[c, m, r, s]",
        ],
        "shapes": {"P": 4, "Q": 4, "R": 3, "S": 3},
    },
    "tensaurus_mttkrp": {
        "declaration": {
            "T": ["I", "J", "K"], "A": ["K", "R"],
            "B": ["J", "R"], "C": ["I", "R"],
        },
        "expressions": ["C[i, r] = T[i, j, k] * B[j, r] * A[k, r]"],
    },
    "factorized_mttkrp": {
        "declaration": {
            "T": ["I", "J", "K"], "A": ["K", "R"], "B": ["J", "R"],
            "S": ["I", "J", "R"], "C": ["I", "R"],
        },
        "expressions": [
            "S[i, j, r] = T[i, j, k] * A[k, r]",
            "C[i, r] = S[i, j, r] * B[j, r]",
        ],
    },
    "cooley_tukey_fft_step": {
        "declaration": {
            "P": ["Z", "K0", "N1", "W"],
            "X": ["N1", "H"],
            "E": ["Z", "K0"],
            "O": ["Z", "K0"],
            "T": ["K0"],
            "Y0": ["K0"],
            "Y1": ["K0"],
        },
        "expressions": [
            "E[0, k0] = P[0, k0, n1, 0] * X[n1, 0]",
            "O[0, k0] = P[0, k0, n1, 0] * X[n1, 1]",
            "T[k0] = P[0, k0, 0, 1] * O[0, k0]",
            "Y0[k0] = E[0, k0] + T[k0]",
            "Y1[k0] = E[0, k0] - T[k0]",
        ],
    },
}
