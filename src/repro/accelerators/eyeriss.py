"""Eyeriss [8]: row-stationary dense CONV (Table 2's direct-conv cascade).

The paper lists Eyeriss among the additionally modeled accelerators
(section 5).  Its Einsum is the 2D direct convolution with batch and
output channels; the row-stationary mapping keeps a filter row and an
input row resident while sliding over output columns — expressed here as
the loop order [M, B, P, Q, C, R, S] with filter rows spatially mapped.
"""

from __future__ import annotations

from ..spec import AcceleratorSpec, load_spec

YAML_TEMPLATE = """
einsum:
  declaration:
    I: [B, C, H, W]
    F: [C, M, R, S]
    O: [B, M, P, Q]
  expressions:
    - O[b, m, p, q] = I[b, c, p + r, q + s] * F[c, m, r, s]
  shapes:
    P: {p}
    Q: {q}
mapping:
  rank-order:
    I: [B, C, H, W]
    F: [M, C, R, S]
    O: [B, M, P, Q]
  loop-order:
    O: [M, B, P, Q, C, R, S]
  spacetime:
    O:
      space: [R]
      time: [M, B, P, Q, C, S]
format:
  I:
    Dense:
      B: {{format: U, pbits: 0}}
      C: {{format: U, pbits: 0}}
      H: {{format: U, pbits: 0}}
      W: {{format: U, cbits: 0, pbits: 16}}
  F:
    Dense:
      M: {{format: U, pbits: 0}}
      C: {{format: U, pbits: 0}}
      R: {{format: U, pbits: 0}}
      S: {{format: U, cbits: 0, pbits: 16}}
  O:
    Dense:
      B: {{format: U, pbits: 0}}
      M: {{format: U, pbits: 0}}
      P: {{format: U, pbits: 0}}
      Q: {{format: U, cbits: 0, pbits: 16}}
architecture:
  Eyeriss:
    clock: 2.0e8
    subtree:
      - name: System
        local:
          - name: DRAM
            class: DRAM
            attributes: {{bandwidth: 1}}
          - name: GLB
            class: Buffer
            attributes: {{type: buffet, width: 64, depth: 13650}}
        subtree:
          - name: PE
            num: 168
            local:
              - name: Spad
                class: Buffer
                attributes: {{type: buffet, width: 16, depth: 224}}
              - name: MACC
                class: Compute
                attributes: {{type: mul}}
binding:
  O:
    config: Eyeriss
    components:
      GLB:
        - tensor: I
          rank: H
          type: elem
          style: lazy
          evict-on: B
          config: Dense
        - tensor: O
          rank: Q
          type: elem
          style: lazy
          evict-on: P
          config: Dense
      Spad:
        - tensor: F
          rank: R
          type: elem
          style: lazy
          evict-on: M
          config: Dense
      MACC:
        - op: mul
"""


def spec(p: int = 8, q: int = 8) -> AcceleratorSpec:
    """The Eyeriss row-stationary CONV spec.

    ``p``/``q`` are the output feature-map extents (affine output ranks
    need explicit shapes).
    """
    return load_spec(YAML_TEMPLATE.format(p=p, q=q), name="eyeriss")
