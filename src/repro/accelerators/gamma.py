"""Gamma [55]: row-wise (Gustavson) SpMSpM with FiberCache and hardware
mergers.

Einsum/mapping follow Figure 8a: the ``take()`` Einsum fetches exactly the
B rows selected by the nonzeros of each A row, then the second Einsum
multiplies and reduces them; the two Einsums *fuse* into one block (paper
section 4.3), so the intermediate T never reaches DRAM.

Architecture per Table 5: 32 PEs at 1 GHz, a 64-way merger per PE, 3 MB
FiberCache, 16 HBM channels x 8 GB/s.  B rows are cached in the FiberCache
(eager row fetches); A and Z stream.  The consumer-side swizzle of T to
``[M, N, K]`` (paper section 5) is priced by the per-PE mergers.
"""

from __future__ import annotations

from ..spec import AcceleratorSpec, load_spec

YAML_TEMPLATE = """
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    T: [K, M, N]
    Z: [M, N]
  expressions:
    - T[k, m, n] = take(A[k, m], B[k, n], 1)
    - Z[m, n] = T[k, m, n] * A[k, m]
mapping:
  rank-order:
    A: [M, K]
    B: [K, N]
    T: [M, K, N]
    Z: [M, N]
  partitioning:
    T:
      M: [uniform_occupancy(A.{pe_rows})]
      K: [uniform_occupancy(A.{merge_way})]
    Z:
      M: [uniform_occupancy(A.{pe_rows})]
      K: [uniform_occupancy(A.{merge_way})]
  loop-order:
    T: [M1, M0, K1, K0, N]
    Z: [M1, M0, K1, N, K0]
  spacetime:
    T:
      space: [M0, K1]
      time: [M1, K0, N]
    Z:
      space: [M0, K1]
      time: [M1, N, K0]
format:
  A:
    CSR:
      M: {{format: U, pbits: 32}}
      K: {{format: C, cbits: 32, pbits: 64}}
  B:
    CSR:
      K: {{format: U, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64}}
  T:
    OnChip:
      M: {{format: C, cbits: 32, pbits: 32}}
      K: {{format: C, cbits: 32, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64}}
  Z:
    CSR:
      M: {{format: U, pbits: 32}}
      N: {{format: C, cbits: 32, pbits: 64}}
architecture:
  Gamma:
    clock: 1.0e9
    subtree:
      - name: System
        local:
          - name: HBM
            class: DRAM
            attributes: {{bandwidth: 128}}
          - name: FiberCache
            class: Buffer
            attributes: {{type: cache, width: 512, depth: 49152,
                          bandwidth: 512}}
        subtree:
          - name: PE
            num: 32
            local:
              - name: AStream
                class: Buffer
                attributes: {{type: buffet, width: 64, depth: 256}}
              - name: OutBuf
                class: Buffer
                attributes: {{type: buffet, width: 64, depth: 1024}}
              - name: Fetcher
                class: Intersection
                attributes: {{type: leader-follower, leader: A}}
              - name: Merger
                class: Merger
                attributes: {{inputs: 64, comparator_radix: 64, outputs: 1,
                              order: opt, reduce: true}}
              - name: FPU
                class: Compute
                attributes: {{type: mul}}
binding:
  T:
    config: Gamma
    components:
      AStream:
        - tensor: A
          rank: K
          type: elem
          style: lazy
          evict-on: K1
          config: CSR
      FiberCache:
        - tensor: B
          rank: K
          type: elem
          style: eager
          config: CSR
        - tensor: T
          rank: root
          type: subtree
          spill: false
          config: OnChip
      Fetcher:
        - op: intersect
          rank: K0
  Z:
    config: Gamma
    components:
      AStream:
        - tensor: A
          rank: K
          type: elem
          style: lazy
          evict-on: K1
          config: CSR
      FiberCache:
        - tensor: T
          rank: root
          type: subtree
          spill: false
          config: OnChip
      OutBuf:
        - tensor: Z
          rank: N
          type: elem
          style: lazy
          evict-on: M0
          config: CSR
      Merger:
        - op: swizzle
          tensor: T
      FPU:
        - op: mul
"""


def spec(pe_rows: int = 32, merge_way: int = 64) -> AcceleratorSpec:
    """The Gamma accelerator spec (Figure 8a + Table 5).

    ``pe_rows`` is the number of A rows distributed across PEs per round;
    ``merge_way`` the radix of the per-PE merger (both scale down for small
    workloads).
    """
    text = YAML_TEMPLATE.format(pe_rows=pe_rows, merge_way=merge_way)
    return load_spec(text, name="gamma")
