"""Tensors represented as named fibertrees (paper section 2.1).

A :class:`Tensor` couples a root :class:`~repro.fibertree.fiber.Fiber` with a
rank order (list of rank names, top to bottom of the tree) and a per-rank
shape.  All of TeAAL's content-preserving transformations — rank swizzling,
partitioning, and flattening — are methods here; each returns a new tensor and
leaves the receiver unchanged.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .fiber import Fiber
from .rankid import flatten_name, split_names


class Tensor:
    """A named fibertree with labeled ranks and per-rank shapes.

    ``shape[r]`` is the integer extent of rank ``rank_ids[r]`` (coordinates
    live in ``[0, shape[r])``) or ``None`` when unknown / not meaningful
    (tuple-coordinate ranks created by flattening).
    """

    def __init__(
        self,
        name: str,
        rank_ids: Sequence[str],
        root: Optional[Fiber] = None,
        shape: Optional[Sequence[Optional[int]]] = None,
    ):
        if len(set(rank_ids)) != len(rank_ids):
            raise ValueError(f"duplicate rank ids in {list(rank_ids)}")
        self.name = name
        self.rank_ids = list(rank_ids)
        self.root = root if root is not None else Fiber()
        if shape is None:
            self.shape: List[Optional[int]] = [None] * len(self.rank_ids)
        else:
            self.shape = list(shape)
        if len(self.shape) != len(self.rank_ids):
            raise ValueError(
                f"shape length {len(self.shape)} does not match "
                f"rank count {len(self.rank_ids)}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        name: str,
        rank_ids: Sequence[str],
        points: Iterable[Tuple[tuple, Any]],
        shape: Optional[Sequence[Optional[int]]] = None,
    ) -> "Tensor":
        """Build a tensor from (coordinate tuple, value) pairs.

        Later duplicates overwrite earlier ones.  Zero values are kept out of
        the tree (a sparse fibertree omits empty payloads).
        """
        dedup: Dict[tuple, Any] = {}
        for point, value in points:
            if len(point) != len(rank_ids):
                raise ValueError(
                    f"point {point} does not match rank count {len(rank_ids)}"
                )
            dedup[tuple(point)] = value
        items = sorted((p, v) for p, v in dedup.items() if v != 0)
        root = _build_from_sorted(items, len(rank_ids))
        return cls(name, rank_ids, root, shape)

    @classmethod
    def empty(
        cls,
        name: str,
        rank_ids: Sequence[str],
        shape: Optional[Sequence[Optional[int]]] = None,
    ) -> "Tensor":
        """An output tensor with no elements yet."""
        return cls(name, rank_ids, Fiber(), shape)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return len(self.rank_ids)

    def rank_index(self, rank: str) -> int:
        try:
            return self.rank_ids.index(rank)
        except ValueError:
            raise KeyError(f"tensor {self.name} has no rank {rank!r}") from None

    def shape_of(self, rank: str) -> Optional[int]:
        return self.shape[self.rank_index(rank)]

    @property
    def nnz(self) -> int:
        """Number of stored scalar values."""
        return self.root.count_leaves()

    def leaves(self) -> Iterator[Tuple[tuple, Any]]:
        """Yield (point, value) for every stored scalar."""
        if self.num_ranks == 0:
            return iter(())
        return self.root.leaves()

    def points(self) -> Dict[tuple, Any]:
        """All stored scalars as a {point: value} dict (flattened coords kept)."""
        return dict(self.leaves())

    def fibers_at_rank(self, rank: str) -> Iterator[Fiber]:
        """Yield every fiber in the level labeled by ``rank``."""
        depth = self.rank_index(rank)
        frontier = [self.root]
        for _ in range(depth):
            frontier = [p for f in frontier for p in f.payloads if isinstance(p, Fiber)]
        return iter(frontier)

    def get(self, point: Sequence[Any], default: Any = 0) -> Any:
        """Scalar value at a fully specified point (``default`` when absent)."""
        node: Any = self.root
        for coord in point:
            if not isinstance(node, Fiber):
                raise KeyError(f"point {tuple(point)} is too deep for {self.name}")
            node = node.get_payload(coord)
            if node is None:
                return default
        return node

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tensor):
            return NotImplemented
        return self.rank_ids == other.rank_ids and self.root == other.root

    def __repr__(self) -> str:
        return f"Tensor({self.name!r}, rank_ids={self.rank_ids}, nnz={self.nnz})"

    def copy(self, name: Optional[str] = None) -> "Tensor":
        return Tensor(
            name or self.name, list(self.rank_ids), self.root.copy(), list(self.shape)
        )

    # ------------------------------------------------------------------
    # Content-preserving transformations (paper section 3.2)
    # ------------------------------------------------------------------
    def swizzle(self, new_rank_ids: Sequence[str]) -> "Tensor":
        """Reorder the ranks of the fibertree (a rank swizzle).

        The set of values at the leaves is unchanged; only the coordinate
        system (level order) changes.  This models offline transposition and
        online sort/merge operations (paper section 3.2.2).
        """
        new_rank_ids = list(new_rank_ids)
        if sorted(new_rank_ids) != sorted(self.rank_ids):
            raise ValueError(
                f"swizzle target {new_rank_ids} is not a permutation of "
                f"{self.rank_ids}"
            )
        if new_rank_ids == self.rank_ids:
            return self.copy()
        perm = [self.rank_index(r) for r in new_rank_ids]
        items = sorted(
            (tuple(point[i] for i in perm), value) for point, value in self.leaves()
        )
        root = _build_from_sorted(items, len(new_rank_ids))
        new_shape = [self.shape[i] for i in perm]
        return Tensor(self.name, new_rank_ids, root, new_shape)

    def partition_uniform_shape(self, rank: str, steps: Sequence[int]) -> "Tensor":
        """Coordinate-based (shape) partitioning of ``rank``.

        ``steps`` lists the chunk shapes top-down; ``n`` steps create ranks
        ``rank{n} .. rank1 rank0``.  Chunks keep original coordinates; the new
        upper coordinates are the first legal coordinate of each chunk.
        """
        names = split_names(rank, len(steps))
        depth = self.rank_index(rank)
        shape = self.shape_of(rank)
        root = self.root.copy()
        for level, step in enumerate(steps):
            root = _split_at_depth(
                root, depth + level, lambda f, s=step: f.split_uniform_shape(s, shape)
            )
        new_ranks = self.rank_ids[:depth] + names + self.rank_ids[depth + 1 :]
        new_shape = (
            self.shape[:depth] + [shape] * len(names) + self.shape[depth + 1 :]
        )
        return Tensor(self.name, new_ranks, root, new_shape)

    def partition_uniform_occupancy(self, rank: str, sizes: Sequence[int]) -> "Tensor":
        """Occupancy-based partitioning of ``rank`` (leader side).

        Each fiber at the rank's level is split into chunks of equal occupancy
        (modulo remainders).  ``sizes`` lists the chunk occupancies top-down.
        Chunk fibers record their coordinate ranges so follower tensors can
        adopt the leader's boundaries.
        """
        names = split_names(rank, len(sizes))
        depth = self.rank_index(rank)
        root = self.root.copy()
        for level, size in enumerate(sizes):
            root = _split_at_depth(
                root, depth + level, lambda f, s=size: f.split_equal(s)
            )
        new_ranks = self.rank_ids[:depth] + names + self.rank_ids[depth + 1 :]
        shape = self.shape_of(rank)
        new_shape = (
            self.shape[:depth] + [shape] * len(names) + self.shape[depth + 1 :]
        )
        return Tensor(self.name, new_ranks, root, new_shape)

    def partition_by_boundaries(
        self, rank: str, names: Sequence[str], boundaries: Sequence[Any]
    ) -> "Tensor":
        """Split ``rank`` at explicit boundaries (follower side of a split)."""
        if len(names) != 2:
            raise ValueError("boundary partitioning adds exactly one level")
        depth = self.rank_index(rank)
        root = _split_at_depth(
            self.root.copy(),
            depth,
            lambda f: f.split_by_boundaries(boundaries),
        )
        new_ranks = self.rank_ids[:depth] + list(names) + self.rank_ids[depth + 1 :]
        shape = self.shape_of(rank)
        new_shape = self.shape[:depth] + [shape, shape] + self.shape[depth + 1 :]
        return Tensor(self.name, new_ranks, root, new_shape)

    def flatten_ranks(self, ranks: Sequence[str]) -> "Tensor":
        """Flatten adjacent ranks into one tuple-coordinate rank (Figure 2)."""
        ranks = list(ranks)
        start = self.rank_index(ranks[0])
        if self.rank_ids[start : start + len(ranks)] != ranks:
            raise ValueError(
                f"ranks {ranks} are not adjacent (in order) in {self.rank_ids}"
            )
        new_name = flatten_name(ranks)
        root = _split_at_depth(
            self.root.copy(), start, lambda f: f.flatten(len(ranks) - 1)
        )
        new_ranks = (
            self.rank_ids[:start] + [new_name] + self.rank_ids[start + len(ranks) :]
        )
        new_shape = self.shape[:start] + [None] + self.shape[start + len(ranks) :]
        return Tensor(self.name, new_ranks, root, new_shape)

    def unpartition(self, upper: str, lower: str, merged: str) -> "Tensor":
        """Merge adjacent split ranks back into one (inverse of partitioning)."""
        depth = self.rank_index(upper)
        if self.rank_ids[depth + 1 : depth + 2] != [lower]:
            raise ValueError(f"{lower} is not directly below {upper}")

        def merge(fiber: Fiber) -> Fiber:
            out = Fiber()
            for _, chunk in fiber:
                for c, p in chunk:
                    out.set_payload(c, p)
            return out

        root = _split_at_depth(self.root.copy(), depth, merge)
        new_ranks = self.rank_ids[:depth] + [merged] + self.rank_ids[depth + 2 :]
        new_shape = self.shape[:depth] + [self.shape[depth]] + self.shape[depth + 2 :]
        return Tensor(self.name, new_ranks, root, new_shape)

    def prune_empty(self) -> "Tensor":
        """Copy with zero leaves and empty fibers removed."""
        return Tensor(self.name, list(self.rank_ids), self.root.prune_empty(),
                      list(self.shape))


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _build_from_sorted(items: List[Tuple[tuple, Any]], num_ranks: int) -> Fiber:
    """Build a fibertree from sorted, de-duplicated (point, value) pairs."""
    if num_ranks == 0:
        raise ValueError("cannot build a fibertree with zero ranks")
    fiber = Fiber()
    if num_ranks == 1:
        for point, value in items:
            fiber.append(point[0], value)
        return fiber
    for coord, group in itertools.groupby(items, key=lambda item: item[0][0]):
        sub = [(point[1:], value) for point, value in group]
        fiber.append(coord, _build_from_sorted(sub, num_ranks - 1))
    return fiber


def _split_at_depth(root: Fiber, depth: int, op) -> Fiber:
    """Apply ``op`` to every fiber at ``depth`` levels below ``root``."""
    if depth == 0:
        return op(root)
    return Fiber(
        list(root.coords),
        [
            _split_at_depth(p, depth - 1, op) if isinstance(p, Fiber) else p
            for p in root.payloads
        ],
        coord_range=root.coord_range,
    )
