"""Concrete representations: materialize fibertrees to byte-level arrays.

Paper section 4.1.1: "to model a specific design, all fibertrees are
lowered to concrete representations, like CSR or COO".  This module does
that lowering for real — each rank becomes coordinate/payload/header
arrays per its :class:`~repro.spec.format.RankFormat` — and the inverse,
so round-trip tests can prove the format machinery loses nothing.

Materialized sizes also cross-check the footprint oracle: the byte counts
the performance model charges are exactly the bytes a real memory would
hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..spec.format import RankFormat, TensorFormat
from .fiber import Fiber
from .tensor import Tensor


@dataclass
class RankArrays:
    """One rank's concrete storage.

    ``coords``/``payloads`` follow the format type: for ``U`` the payload
    array is shape-indexed (with ``empty`` markers); for ``C`` both arrays
    are occupancy-indexed; for ``B`` coords is a shape-indexed bitmap and
    payloads occupancy-indexed.  ``headers`` holds per-fiber
    (start, length) bookkeeping when ``fhbits`` is nonzero.
    """

    format: RankFormat
    coords: List = field(default_factory=list)
    payloads: List = field(default_factory=list)
    headers: List[Tuple[int, int]] = field(default_factory=list)

    def size_bits(self) -> int:
        fmt = self.format
        return (
            len(self.coords) * fmt.cbits
            + len(self.payloads) * fmt.pbits
            + len(self.headers) * fmt.fhbits
        )


EMPTY = object()  # marker for absent payloads in uncompressed arrays


@dataclass
class ConcreteTensor:
    """A tensor lowered onto per-rank arrays."""

    name: str
    rank_ids: List[str]
    shape: List[Optional[int]]
    ranks: Dict[str, RankArrays] = field(default_factory=dict)

    def size_bits(self) -> int:
        return sum(r.size_bits() for r in self.ranks.values())

    def size_bytes(self) -> float:
        return self.size_bits() / 8


def materialize(tensor: Tensor, formats: TensorFormat,
                config: Optional[str] = None) -> ConcreteTensor:
    """Lower a fibertree to concrete per-rank arrays under a format."""
    out = ConcreteTensor(tensor.name, list(tensor.rank_ids),
                         list(tensor.shape))
    for depth, rank in enumerate(tensor.rank_ids):
        fmt = formats.rank_format(rank, config)
        arrays = RankArrays(format=fmt)
        is_leaf = depth == len(tensor.rank_ids) - 1
        for fiber in tensor.fibers_at_rank(rank):
            _lower_fiber(fiber, fmt, arrays, tensor.shape[depth], is_leaf)
        out.ranks[rank] = arrays
    return out


def _lower_fiber(fiber: Fiber, fmt: RankFormat, arrays: RankArrays,
                 shape: Optional[int], is_leaf: bool) -> None:
    start = len(arrays.payloads)
    if fmt.format == "U":
        extent = shape if shape is not None else (
            (max(fiber.coords) + 1) if fiber.coords else 0
        )
        dense = [EMPTY] * extent
        for c, p in fiber:
            dense[c] = p if is_leaf else len(arrays.headers)
        arrays.payloads.extend(dense)
    elif fmt.format == "B":
        extent = shape if shape is not None else (
            (max(fiber.coords) + 1) if fiber.coords else 0
        )
        bitmap = [0] * extent
        for c in fiber.coords:
            bitmap[c] = 1
        arrays.coords.extend(bitmap)
        for c, p in fiber:
            arrays.payloads.append(p if is_leaf else None)
    else:  # C
        for c, p in fiber:
            arrays.coords.append(c)
            arrays.payloads.append(p if is_leaf else None)
    arrays.headers.append((start, len(arrays.payloads) - start))


def dematerialize(concrete: ConcreteTensor) -> Tensor:
    """Rebuild the fibertree from concrete arrays (round-trip inverse).

    Reconstruction walks the per-rank header arrays: header ``j`` of rank
    ``r`` spans the child fibers of the ``j``-th fiber at rank ``r``.
    """
    rank_ids = concrete.rank_ids

    def rebuild(depth: int, header_index: int) -> Fiber:
        rank = rank_ids[depth]
        arrays = concrete.ranks[rank]
        fmt = arrays.format
        start, length = arrays.headers[header_index]
        is_leaf = depth == len(rank_ids) - 1
        coords = []
        payloads = []
        child_counter = _child_base(concrete, depth, header_index)
        if fmt.format == "U":
            for offset in range(length):
                value = arrays.payloads[start + offset]
                if value is EMPTY:
                    continue
                coords.append(offset)
                if is_leaf:
                    payloads.append(value)
                else:
                    payloads.append(rebuild(depth + 1, child_counter))
                    child_counter += 1
        elif fmt.format == "B":
            # The bitmap for this fiber occupies its own shape-slots span.
            present = 0
            span = _bitmap_span(concrete, depth)
            bit_start = header_index * span
            for offset in range(span):
                if arrays.coords[bit_start + offset]:
                    coords.append(offset)
                    value = arrays.payloads[start + present]
                    if is_leaf:
                        payloads.append(value)
                    else:
                        payloads.append(rebuild(depth + 1, child_counter))
                        child_counter += 1
                    present += 1
        else:
            for offset in range(length):
                coords.append(arrays.coords[start + offset])
                value = arrays.payloads[start + offset]
                if is_leaf:
                    payloads.append(value)
                else:
                    payloads.append(rebuild(depth + 1, child_counter))
                    child_counter += 1
        return Fiber(coords, payloads)

    root = rebuild(0, 0)
    return Tensor(concrete.name, rank_ids, root, concrete.shape)


def _child_base(concrete: ConcreteTensor, depth: int,
                header_index: int) -> int:
    """Index of the first child fiber (at depth+1) under this fiber."""
    if depth + 1 >= len(concrete.rank_ids):
        return 0
    rank = concrete.rank_ids[depth]
    arrays = concrete.ranks[rank]
    total = 0
    for j in range(header_index):
        start, length = arrays.headers[j]
        if arrays.format.format == "U":
            total += sum(
                1 for v in arrays.payloads[start : start + length]
                if v is not EMPTY
            )
        else:
            total += length
    return total


def _bitmap_span(concrete: ConcreteTensor, depth: int) -> int:
    shape = concrete.shape[depth]
    if shape is not None:
        return shape
    arrays = concrete.ranks[concrete.rank_ids[depth]]
    return len(arrays.coords) // max(1, len(arrays.headers))
