"""Fibers: the building block of the fibertree abstraction (paper section 2.1).

A fiber is an ordered sequence of (coordinate, payload) elements where the
payload is either a scalar value (at the leaf level of a fibertree) or a
child :class:`Fiber` (at intermediate levels).  Coordinates are integers, or
tuples of integers after a rank flattening (paper Figure 2).

Fibers sort their elements by coordinate, enabling the sequential, concordant
traversal that sparse accelerators rely on, as well as efficient two-finger
intersection and union (merge) co-iteration.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Iterator, Optional, Tuple

Coord = Any  # int, or tuple of ints after flattening


class Fiber:
    """An ordered collection of coordinate/payload pairs.

    Payloads are scalars (leaf level) or child fibers (intermediate levels).
    An optional ``coord_range`` records the half-open interval of legal
    coordinates covered by this fiber; partitioning operators set it so that
    follower tensors can adopt a leader's partition boundaries.
    """

    __slots__ = ("coords", "payloads", "coord_range")

    def __init__(
        self,
        coords: Optional[Iterable[Coord]] = None,
        payloads: Optional[Iterable[Any]] = None,
        coord_range: Optional[Tuple[Coord, Coord]] = None,
    ):
        self.coords = list(coords) if coords is not None else []
        self.payloads = list(payloads) if payloads is not None else []
        if len(self.coords) != len(self.payloads):
            raise ValueError(
                "coords and payloads must have equal length: "
                f"{len(self.coords)} != {len(self.payloads)}"
            )
        if any(
            self.coords[i] >= self.coords[i + 1] for i in range(len(self.coords) - 1)
        ):
            order = sorted(range(len(self.coords)), key=lambda i: self.coords[i])
            self.coords = [self.coords[i] for i in order]
            self.payloads = [self.payloads[i] for i in order]
            # Sorting can only mask duplicates, never fix them: two elements
            # at one coordinate have no defined payload, and every merge
            # co-iterator assumes strictly increasing coordinates.
            dup = next(
                (
                    self.coords[i]
                    for i in range(len(self.coords) - 1)
                    if self.coords[i] == self.coords[i + 1]
                ),
                None,
            )
            if dup is not None:
                raise ValueError(
                    f"duplicate coordinate {dup!r}: a fiber holds at most "
                    "one payload per coordinate"
                )
        self.coord_range = coord_range

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, mapping: dict) -> "Fiber":
        """Build a fiber from a {coord: payload} mapping (payloads may be dicts)."""
        coords = sorted(mapping)
        payloads = [
            cls.from_dict(mapping[c]) if isinstance(mapping[c], dict) else mapping[c]
            for c in coords
        ]
        return cls(coords, payloads)

    def to_dict(self) -> dict:
        """Inverse of :meth:`from_dict` — a nested {coord: payload} mapping."""
        return {
            c: p.to_dict() if isinstance(p, Fiber) else p
            for c, p in zip(self.coords, self.payloads)
        }

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.coords)

    def __iter__(self) -> Iterator[Tuple[Coord, Any]]:
        return iter(zip(self.coords, self.payloads))

    def __bool__(self) -> bool:
        return len(self.coords) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fiber):
            return NotImplemented
        return self.coords == other.coords and self.payloads == other.payloads

    def __repr__(self) -> str:
        items = ", ".join(f"{c}: {p!r}" for c, p in self)
        return f"Fiber({{{items}}})"

    @property
    def occupancy(self) -> int:
        """Number of elements present (the fiber's occupancy)."""
        return len(self.coords)

    def is_empty(self) -> bool:
        return not self.coords

    # ------------------------------------------------------------------
    # Lookup and mutation
    # ------------------------------------------------------------------
    def position_of(self, coord: Coord) -> Optional[int]:
        """Position of ``coord`` in this fiber, or None when absent."""
        i = bisect.bisect_left(self.coords, coord)
        if i < len(self.coords) and self.coords[i] == coord:
            return i
        return None

    def get_payload(self, coord: Coord, default: Any = None) -> Any:
        """Payload at ``coord``, or ``default`` when the coordinate is absent."""
        pos = self.position_of(coord)
        return default if pos is None else self.payloads[pos]

    def get_payload_ref(self, coord: Coord, make: Callable[[], Any]) -> Any:
        """Payload at ``coord``, inserting ``make()`` first when absent.

        Used when building output fibertrees: intermediate levels insert child
        fibers, leaf levels insert a zero scalar that the caller then updates
        via :meth:`set_payload`.
        """
        i = bisect.bisect_left(self.coords, coord)
        if i < len(self.coords) and self.coords[i] == coord:
            return self.payloads[i]
        payload = make()
        self.coords.insert(i, coord)
        self.payloads.insert(i, payload)
        return payload

    def set_payload(self, coord: Coord, payload: Any) -> None:
        """Insert or overwrite the payload at ``coord``."""
        i = bisect.bisect_left(self.coords, coord)
        if i < len(self.coords) and self.coords[i] == coord:
            self.payloads[i] = payload
        else:
            self.coords.insert(i, coord)
            self.payloads.insert(i, payload)

    def append(self, coord: Coord, payload: Any) -> None:
        """Append an element with a coordinate beyond any current coordinate."""
        if self.coords and coord <= self.coords[-1]:
            raise ValueError(
                f"append requires increasing coordinates: {coord} after "
                f"{self.coords[-1]}"
            )
        self.coords.append(coord)
        self.payloads.append(payload)

    # ------------------------------------------------------------------
    # Slicing and projection
    # ------------------------------------------------------------------
    def slice(self, lo: Coord, hi: Coord) -> "Fiber":
        """Sub-fiber with coordinates in the half-open interval [lo, hi)."""
        i = bisect.bisect_left(self.coords, lo)
        j = bisect.bisect_left(self.coords, hi)
        return Fiber(self.coords[i:j], self.payloads[i:j], coord_range=(lo, hi))

    def project(
        self,
        offset: int,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> "Fiber":
        """Shift every coordinate by ``offset``, keeping those in [lo, hi).

        Used to co-iterate tensors accessed through affine index expressions
        like ``I[q + s]``: at a fixed ``q`` the ``s`` coordinates of ``I`` are
        its own coordinates shifted by ``-q``.
        """
        coords = []
        payloads = []
        for c, p in self:
            nc = c + offset
            if lo is not None and nc < lo:
                continue
            if hi is not None and nc >= hi:
                continue
            coords.append(nc)
            payloads.append(p)
        return Fiber(coords, payloads)

    # ------------------------------------------------------------------
    # Co-iteration (merge-based set operations)
    # ------------------------------------------------------------------
    def intersect(self, other: "Fiber") -> Iterator[Tuple[Coord, Any, Any]]:
        """Two-finger intersection: yields (coord, payload_a, payload_b)."""
        i, j = 0, 0
        a_coords, b_coords = self.coords, other.coords
        while i < len(a_coords) and j < len(b_coords):
            ca, cb = a_coords[i], b_coords[j]
            if ca == cb:
                yield ca, self.payloads[i], other.payloads[j]
                i += 1
                j += 1
            elif ca < cb:
                i += 1
            else:
                j += 1

    def union(self, other: "Fiber") -> Iterator[Tuple[Coord, Any, Any]]:
        """Merge union: yields (coord, payload_a_or_None, payload_b_or_None)."""
        i, j = 0, 0
        a_coords, b_coords = self.coords, other.coords
        while i < len(a_coords) or j < len(b_coords):
            if j >= len(b_coords) or (i < len(a_coords) and a_coords[i] < b_coords[j]):
                yield a_coords[i], self.payloads[i], None
                i += 1
            elif i >= len(a_coords) or b_coords[j] < a_coords[i]:
                yield b_coords[j], None, other.payloads[j]
                j += 1
            else:
                yield a_coords[i], self.payloads[i], other.payloads[j]
                i += 1
                j += 1

    # ------------------------------------------------------------------
    # Splitting (rank partitioning primitives; paper section 3.2.1)
    # ------------------------------------------------------------------
    def split_uniform_shape(self, step: int, shape: Optional[int] = None) -> "Fiber":
        """Coordinate-based split into chunks covering ``step`` coordinates.

        Returns a fiber-of-fibers whose upper coordinates are the first legal
        coordinate of each chunk (0, step, 2*step, ...).  Empty chunks are
        omitted, matching sparse fibertree semantics.
        """
        if step <= 0:
            raise ValueError(f"split step must be positive, got {step}")
        upper = Fiber()
        for c, p in self:
            base = (c // step) * step
            chunk = upper.get_payload(base)
            if chunk is None:
                chunk = Fiber(coord_range=(base, base + step))
                upper.set_payload(base, chunk)
            chunk.append(c, p)
        if shape is not None:
            upper.coord_range = (0, shape)
        return upper

    def split_equal(self, size: int) -> "Fiber":
        """Occupancy-based split into chunks of ``size`` elements each.

        The last chunk may hold fewer elements (the "modulo remainder" of the
        paper).  Upper coordinates are the first coordinate present in each
        chunk; each chunk records its half-open coordinate range so follower
        tensors can adopt the same boundaries (leader-follower paradigm).
        """
        if size <= 0:
            raise ValueError(f"split size must be positive, got {size}")
        upper = Fiber()
        for start in range(0, len(self.coords), size):
            chunk_coords = self.coords[start : start + size]
            chunk_payloads = self.payloads[start : start + size]
            lo = chunk_coords[0]
            nxt = start + size
            hi = self.coords[nxt] if nxt < len(self.coords) else None
            chunk = Fiber(chunk_coords, chunk_payloads, coord_range=(lo, hi))
            upper.append(lo, chunk)
        return upper

    def split_by_boundaries(self, boundaries: Iterable[Coord]) -> "Fiber":
        """Split at explicit coordinate boundaries (follower-side split).

        ``boundaries`` is the sorted list of lower coordinates of each chunk;
        elements below the first boundary are dropped (they fall outside the
        leader's coordinate space).
        """
        bounds = list(boundaries)
        upper = Fiber()
        for idx, lo in enumerate(bounds):
            hi = bounds[idx + 1] if idx + 1 < len(bounds) else None
            if hi is None:
                i = bisect.bisect_left(self.coords, lo)
                chunk = Fiber(self.coords[i:], self.payloads[i:], coord_range=(lo, hi))
            else:
                chunk = self.slice(lo, hi)
            if chunk:
                upper.append(lo, chunk)
        return upper

    def boundaries(self) -> list:
        """Lower coordinate of each chunk of a split fiber (for followers)."""
        out = []
        for c, p in self:
            if isinstance(p, Fiber) and p.coord_range is not None:
                out.append(p.coord_range[0])
            else:
                out.append(c)
        return out

    # ------------------------------------------------------------------
    # Flattening (paper Figure 2)
    # ------------------------------------------------------------------
    def flatten(self, levels: int = 1) -> "Fiber":
        """Flatten this fiber with ``levels`` child levels into one fiber.

        Coordinates of the result are tuples of the original coordinates; the
        payloads are the payloads from the original lowest flattened level.
        Tuple components that are themselves tuples (repeated flattening) are
        concatenated, matching TeAAL's generic flattening.
        """
        if levels < 1:
            raise ValueError("flatten requires at least one child level")
        flat = Fiber()
        for c, p in self:
            if not isinstance(p, Fiber):
                raise TypeError("cannot flatten a leaf fiber")
            child = p.flatten(levels - 1) if levels > 1 else p
            c_tuple = c if isinstance(c, tuple) else (c,)
            for cc, pp in child:
                cc_tuple = cc if isinstance(cc, tuple) else (cc,)
                flat.append(c_tuple + cc_tuple, pp)
        return flat

    # ------------------------------------------------------------------
    # Whole-tree utilities
    # ------------------------------------------------------------------
    def count_leaves(self) -> int:
        """Total number of scalar leaves under this fiber."""
        total = 0
        for _, p in self:
            total += p.count_leaves() if isinstance(p, Fiber) else 1
        return total

    def leaves(self, prefix: Tuple[Coord, ...] = ()) -> Iterator[Tuple[tuple, Any]]:
        """Yield (full coordinate tuple, scalar value) for every leaf."""
        for c, p in self:
            point = prefix + (c,)
            if isinstance(p, Fiber):
                yield from p.leaves(point)
            else:
                yield point, p

    def prune_empty(self) -> "Fiber":
        """Copy with empty sub-fibers and zero-valued leaves removed."""
        coords = []
        payloads = []
        for c, p in self:
            if isinstance(p, Fiber):
                pruned = p.prune_empty()
                if pruned:
                    coords.append(c)
                    payloads.append(pruned)
            elif p != 0:
                coords.append(c)
                payloads.append(p)
        return Fiber(coords, payloads, coord_range=self.coord_range)

    def copy(self) -> "Fiber":
        """Deep copy of this fiber."""
        return Fiber(
            list(self.coords),
            [p.copy() if isinstance(p, Fiber) else p for p in self.payloads],
            coord_range=self.coord_range,
        )

    def depth(self) -> int:
        """Number of levels below and including this fiber (1 for a leaf fiber)."""
        for _, p in self:
            if isinstance(p, Fiber):
                return 1 + p.depth()
            return 1
        return 1
