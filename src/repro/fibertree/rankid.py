"""Naming rules for ranks under partitioning and flattening.

TeAAL derives new rank names mechanically from mapping directives:

* splitting rank ``K`` with ``n`` directives yields ranks ``K{n} ... K1 K0``
  (top-down), e.g. one directive gives ``K1, K0``;
* flattening ranks ``(M, K0)`` yields the concatenated rank ``MK0``;
* index variables are the lower-cased rank names (rank ``KM1`` is indexed by
  the variable ``km1``).
"""

from __future__ import annotations

from typing import List, Sequence


def split_names(rank: str, num_directives: int) -> List[str]:
    """Names created by ``num_directives`` split directives on ``rank``.

    >>> split_names("K", 1)
    ['K1', 'K0']
    >>> split_names("KM", 2)
    ['KM2', 'KM1', 'KM0']
    """
    if num_directives < 1:
        raise ValueError("a split requires at least one directive")
    return [f"{rank}{level}" for level in range(num_directives, -1, -1)]


def flatten_name(ranks: Sequence[str]) -> str:
    """Name of the rank produced by flattening ``ranks`` together.

    >>> flatten_name(("K", "M"))
    'KM'
    >>> flatten_name(("M", "K0"))
    'MK0'
    """
    if len(ranks) < 2:
        raise ValueError("flattening combines at least two ranks")
    return "".join(ranks)


def index_var(rank: str) -> str:
    """Index variable used for a rank in Einsum expressions (lower-cased)."""
    return rank.lower()


def rank_of_var(var: str) -> str:
    """Rank name corresponding to an index variable (upper-cased)."""
    return var.upper()
