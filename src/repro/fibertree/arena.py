"""Flat, arena-style fibertree storage (structure-of-arrays).

A :class:`FlatArena` stores one fibertree as per-level flat buffers in the
style of a generalized CSF/CSR encoding (the layout the Sparse Abstract
Machine streams fastest):

* ``coords[d]`` — every coordinate of level ``d``, fiber-major.  Stored as
  an ``int64`` numpy array when the level's coordinates are plain
  integers, or a Python list when they are tuples (flattened ranks) or
  otherwise non-numeric.
* ``segs[d]`` — segment pointers (``int64`` numpy arrays): fiber ``f`` of
  level ``d`` owns the span ``coords[d][segs[d][f] : segs[d][f + 1]]``.
  Level 0 holds exactly one fiber (the root); level ``d + 1`` holds one
  fiber per element of level ``d`` — the child fiber of the element at
  position ``p`` is fiber ``p``.
* ``vals`` — the leaf scalars, aligned with ``coords[depth - 1]``.  A
  ``float64`` numpy array when every payload is a float, a Python list
  otherwise (ints are deliberately *not* coerced: int64 arithmetic wraps
  where Python ints do not).
* ``ranges[d]`` — per fiber of level ``d``, the optional half-open
  ``coord_range`` carried over from :class:`~repro.fibertree.fiber.Fiber`
  (split chunks record their partition windows here so occupancy followers
  can adopt a leader's boundaries).

The numpy buffers are what the *vector* kernel flavor
(:mod:`repro.ir.codegen_flat`) consumes: whole leaf spans price through
``searchsorted``-style batched ops.  The scalar kernel flavors (flat /
counted / fused) instead bind the memoized :meth:`scalar_buffers` views —
plain Python lists, which CPython indexes faster than any array type —
so arena storage being numpy never slows the element-at-a-time loops.
:class:`FlatFiberView` offers a cheap, read-only fiber-shaped view over an
arena span for inspection and interop.
"""

from __future__ import annotations

import bisect
from array import array
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from .fiber import Fiber
from .tensor import Tensor

#: dtype of integer coordinate and segment buffers.
COORD_DTYPE = np.int64
#: dtype of numeric leaf-value buffers.
VALUE_DTYPE = np.float64


def _coord_buffer(coords: List[Any]):
    """Pack a level's coordinates: ``int64`` ndarray for plain ints
    (bools excluded — they are ints to ``isinstance`` but not to the
    fibertree), a Python list otherwise (tuples, floats, big ints)."""
    if all(type(c) is int for c in coords):
        try:
            return np.array(coords, dtype=COORD_DTYPE)
        except OverflowError:
            return list(coords)
    return list(coords)


def _value_buffer(vals: List[Any]):
    """Pack leaf values: ``float64`` ndarray when every payload is a
    float (``np.float64`` included — it subclasses ``float``), a Python
    list otherwise.  Ints keep the list form on purpose: int64 numpy
    arithmetic wraps silently where Python ints are unbounded."""
    if all(isinstance(v, float) for v in vals):
        return np.array(vals, dtype=VALUE_DTYPE) if vals else \
            np.empty(0, dtype=VALUE_DTYPE)
    return list(vals)


def _seg_buffer(segs: array) -> np.ndarray:
    """Zero-copy int64 view of an ``array('q')`` segment buffer."""
    if len(segs) == 0:
        return np.empty(0, dtype=COORD_DTYPE)
    return np.frombuffer(segs, dtype=COORD_DTYPE)


def _as_list(buf) -> list:
    """A Python-list copy of a level buffer (ndarray or list)."""
    if isinstance(buf, np.ndarray):
        return buf.tolist()
    return list(buf)


class FlatArena:
    """Structure-of-arrays encoding of one fibertree (see module docs)."""

    __slots__ = ("depth", "coords", "segs", "vals", "ranges", "_scalar")

    def __init__(self, depth: int, coords, segs, vals, ranges):
        self.depth = depth
        self.coords = coords
        self.segs = segs
        self.vals = vals
        self.ranges = ranges
        self._scalar = None  # memoized list views for the scalar kernels

    # ------------------------------------------------------------------
    # Pickling (__slots__ classes need explicit state; the memoized list
    # views are derived data and deliberately dropped — arenas pickle as
    # compact numpy arrays, which is what makes process-pool evaluation
    # workers affordable).
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self.depth, self.coords, self.segs, self.vals, self.ranges)

    def __setstate__(self, state):
        self.depth, self.coords, self.segs, self.vals, self.ranges = state
        self._scalar = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_fiber(cls, root: Fiber, depth: int) -> "FlatArena":
        """Flatten a fibertree with ``depth`` levels below ``root``."""
        if depth < 1:
            raise ValueError("an arena needs at least one level")
        coords: List[Any] = []
        segs: List[np.ndarray] = []
        vals: List[Any] = []
        ranges: List[List[Optional[tuple]]] = []
        frontier: List[Fiber] = [root]
        for d in range(depth):
            level_coords: List[Any] = []
            level_segs = array("q", [0])
            level_ranges: List[Optional[tuple]] = []
            next_frontier: List[Fiber] = []
            last = d == depth - 1
            for fiber in frontier:
                if not isinstance(fiber, Fiber):
                    raise TypeError(
                        f"expected a fiber at level {d}, got "
                        f"{type(fiber).__name__}: the tree is shallower than "
                        f"depth {depth}"
                    )
                level_ranges.append(fiber.coord_range)
                level_coords.extend(fiber.coords)
                level_segs.append(len(level_coords))
                if last:
                    for payload in fiber.payloads:
                        if isinstance(payload, Fiber):
                            raise TypeError(
                                f"fiber payload at leaf level {d}: the tree "
                                f"is deeper than depth {depth}"
                            )
                        vals.append(payload)
                else:
                    next_frontier.extend(fiber.payloads)
            coords.append(_coord_buffer(level_coords))
            segs.append(_seg_buffer(level_segs))
            ranges.append(level_ranges)
            frontier = next_frontier
        return cls(depth, coords, segs, _value_buffer(vals), ranges)

    @classmethod
    def from_tensor(cls, tensor: Tensor) -> "FlatArena":
        return cls.from_fiber(tensor.root, tensor.num_ranks)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.vals)

    def num_fibers(self, level: int) -> int:
        return len(self.segs[level]) - 1

    def span(self, level: int, fiber: int) -> Tuple[int, int]:
        """The [lo, hi) positions fiber ``fiber`` owns within level ``level``."""
        seg = self.segs[level]
        return int(seg[fiber]), int(seg[fiber + 1])

    def __repr__(self) -> str:
        return f"FlatArena(depth={self.depth}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    # Buffer views
    # ------------------------------------------------------------------
    def scalar_buffers(self):
        """Memoized ``(coords_lists, segs_lists, vals_list)`` views.

        The element-at-a-time kernel flavors bind these instead of the
        raw numpy buffers: CPython list indexing returns interned small
        ints / existing float objects with no boxing, which is both
        faster than ndarray item access and — more importantly —
        value-identical to the pre-numpy behavior (coordinates stay
        Python ints in every stamp tuple, key path, and output fiber).
        """
        if self._scalar is None:
            self._scalar = (
                [_as_list(c) for c in self.coords],
                [_as_list(s) for s in self.segs],
                _as_list(self.vals),
            )
        return self._scalar

    def np_coords(self, level: int) -> Optional[np.ndarray]:
        """Level ``level``'s coordinates as an int64 ndarray, or ``None``
        when the level fell back to list storage (non-integer coords)."""
        buf = self.coords[level]
        return buf if isinstance(buf, np.ndarray) else None

    def np_vals(self) -> Optional[np.ndarray]:
        """Leaf values as a float64 ndarray, or ``None`` on fallback."""
        return self.vals if isinstance(self.vals, np.ndarray) else None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation.

        Enforced: segment monotonicity and coverage, strictly increasing
        coordinates within each fiber span (duplicates are rejected, just
        as :class:`Fiber` rejects them), and buffer length consistency.
        Numpy-backed levels check monotonicity with one vectorized pass.
        """
        expected_fibers = 1
        for d in range(self.depth):
            seg = self.segs[d]
            if len(seg) != expected_fibers + 1:
                raise ValueError(
                    f"level {d}: {len(seg) - 1} fibers, expected "
                    f"{expected_fibers}"
                )
            if seg[0] != 0 or seg[-1] != len(self.coords[d]):
                raise ValueError(f"level {d}: segments do not cover coords")
            if len(self.ranges[d]) != expected_fibers:
                raise ValueError(f"level {d}: ranges misaligned with fibers")
            cs = self.coords[d]
            if isinstance(cs, np.ndarray) and isinstance(seg, np.ndarray):
                if len(seg) > 1 and np.any(np.diff(seg) < 0):
                    raise ValueError(f"level {d}: fiber with negative span")
                if len(cs) > 1:
                    # Strictly increasing within fibers: every adjacent
                    # pair must increase except across a fiber boundary.
                    ok = cs[1:] > cs[:-1]
                    boundaries = seg[1:-1] - 1  # last position per fiber
                    boundaries = boundaries[
                        (boundaries >= 0) & (boundaries < len(ok))
                    ]
                    ok[boundaries] = True
                    if not bool(np.all(ok)):
                        p = int(np.nonzero(~ok)[0][0]) + 1
                        raise ValueError(
                            f"level {d}: coordinates not strictly "
                            f"increasing at position {p} "
                            f"({cs[p - 1]!r} then {cs[p]!r})"
                        )
            else:
                for f in range(len(seg) - 1):
                    lo, hi = int(seg[f]), int(seg[f + 1])
                    if lo > hi:
                        raise ValueError(
                            f"level {d}: fiber {f} has negative span"
                        )
                    for p in range(lo + 1, hi):
                        if not cs[p - 1] < cs[p]:
                            raise ValueError(
                                f"level {d}: fiber {f} coordinates not "
                                f"strictly increasing at position {p} "
                                f"({cs[p - 1]!r} then {cs[p]!r})"
                            )
            expected_fibers = len(cs)
        if len(self.vals) != len(self.coords[self.depth - 1]):
            raise ValueError("leaf values misaligned with leaf coordinates")

    # ------------------------------------------------------------------
    # Conversion back to boxed fibers
    # ------------------------------------------------------------------
    def to_fiber(self) -> Fiber:
        """Rebuild the boxed :class:`Fiber` tree (inverse of ``from_fiber``)."""
        self.validate()
        coords_l, segs_l, vals_l = self.scalar_buffers()

        def build(level: int, fiber: int) -> Fiber:
            seg = segs_l[level]
            lo, hi = seg[fiber], seg[fiber + 1]
            cs = coords_l[level][lo:hi]
            if level == self.depth - 1:
                ps: List[Any] = vals_l[lo:hi]
            else:
                ps = [build(level + 1, p) for p in range(lo, hi)]
            return Fiber(cs, ps, coord_range=self.ranges[level][fiber])

        return build(0, 0)

    def to_tensor(self, name: str, rank_ids, shape=None) -> Tensor:
        return Tensor(name, list(rank_ids), self.to_fiber(), shape)

    def root_view(self) -> "FlatFiberView":
        return FlatFiberView(self, 0, 0)


class FlatFiberView:
    """A cheap, read-only fiber-shaped view over one arena fiber.

    Iteration yields ``(coord, payload)`` where intermediate payloads are
    themselves views and leaf payloads are the stored scalars — the same
    protocol as :class:`Fiber`, without materializing any of it.
    """

    __slots__ = ("arena", "level", "fiber")

    def __init__(self, arena: FlatArena, level: int, fiber: int):
        self.arena = arena
        self.level = level
        self.fiber = fiber

    @property
    def _span(self) -> Tuple[int, int]:
        return self.arena.span(self.level, self.fiber)

    @property
    def coords(self) -> list:
        lo, hi = self._span
        return _as_list(self.arena.coords[self.level][lo:hi])

    @property
    def coord_range(self) -> Optional[tuple]:
        return self.arena.ranges[self.level][self.fiber]

    def _payload_at(self, pos: int) -> Any:
        if self.level == self.arena.depth - 1:
            val = self.arena.vals[pos]
            return float(val) if isinstance(val, np.floating) else val
        return FlatFiberView(self.arena, self.level + 1, pos)

    @property
    def payloads(self) -> list:
        lo, hi = self._span
        return [self._payload_at(p) for p in range(lo, hi)]

    def __len__(self) -> int:
        lo, hi = self._span
        return hi - lo

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        lo, hi = self._span
        cs = self.arena.coords[self.level]
        np_level = isinstance(cs, np.ndarray)
        for p in range(lo, hi):
            c = int(cs[p]) if np_level else cs[p]
            yield c, self._payload_at(p)

    def get_payload(self, coord: Any, default: Any = None) -> Any:
        lo, hi = self._span
        cs = self.arena.coords[self.level]
        p = bisect.bisect_left(cs, coord, lo, hi)
        if p < hi and cs[p] == coord:
            return self._payload_at(p)
        return default

    def to_fiber(self) -> Fiber:
        """Materialize this view (and everything below it) as a Fiber."""
        ps = [
            p.to_fiber() if isinstance(p, FlatFiberView) else p
            for p in self.payloads
        ]
        return Fiber(self.coords, ps, coord_range=self.coord_range)

    def __repr__(self) -> str:
        return (
            f"FlatFiberView(level={self.level}, fiber={self.fiber}, "
            f"len={len(self)})"
        )


# ----------------------------------------------------------------------
# Module-level conveniences (the names the rest of the codebase imports)
# ----------------------------------------------------------------------
def arena_from_tensor(tensor: Tensor) -> FlatArena:
    """Flatten a tensor's fibertree into a :class:`FlatArena`."""
    return FlatArena.from_tensor(tensor)


def arena_from_fiber(root: Fiber, depth: int) -> FlatArena:
    return FlatArena.from_fiber(root, depth)


def tensor_from_arena(
    arena: FlatArena, name: str, rank_ids, shape=None
) -> Tensor:
    """Rebuild a boxed tensor from an arena (inverse of ``arena_from_tensor``)."""
    return arena.to_tensor(name, rank_ids, shape)
