"""Fibertree substrate: fibers, tensors, and content-preserving transforms."""

from .fiber import Fiber
from .rankid import flatten_name, index_var, rank_of_var, split_names
from .tensor import Tensor
from .arena import (
    FlatArena,
    FlatFiberView,
    arena_from_fiber,
    arena_from_tensor,
    tensor_from_arena,
)
from .convert import (
    arena_from_scipy,
    arena_to_scipy,
    tensor_from_dense,
    tensor_from_scipy,
    tensor_to_dense,
    tensor_to_scipy,
)

__all__ = [
    "Fiber",
    "FlatArena",
    "FlatFiberView",
    "Tensor",
    "arena_from_fiber",
    "arena_from_scipy",
    "arena_from_tensor",
    "arena_to_scipy",
    "flatten_name",
    "index_var",
    "rank_of_var",
    "split_names",
    "tensor_from_arena",
    "tensor_from_dense",
    "tensor_from_scipy",
    "tensor_to_dense",
    "tensor_to_scipy",
]
