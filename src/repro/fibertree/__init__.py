"""Fibertree substrate: fibers, tensors, and content-preserving transforms."""

from .fiber import Fiber
from .rankid import flatten_name, index_var, rank_of_var, split_names
from .tensor import Tensor
from .convert import (
    tensor_from_dense,
    tensor_from_scipy,
    tensor_to_dense,
    tensor_to_scipy,
)

__all__ = [
    "Fiber",
    "Tensor",
    "flatten_name",
    "index_var",
    "rank_of_var",
    "split_names",
    "tensor_from_dense",
    "tensor_from_scipy",
    "tensor_to_dense",
    "tensor_to_scipy",
]
