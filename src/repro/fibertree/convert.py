"""Conversions between fibertree tensors and numpy / scipy representations.

These are the bridges used by tests (to validate kernel outputs against dense
references) and by workload loaders (to ingest scipy sparse matrices).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor


def tensor_from_dense(
    name: str, rank_ids: Sequence[str], array: np.ndarray
) -> Tensor:
    """Build a (sparse) fibertree from a dense numpy array, omitting zeros."""
    array = np.asarray(array)
    if array.ndim != len(rank_ids):
        raise ValueError(
            f"array has {array.ndim} dims but {len(rank_ids)} rank ids given"
        )
    points = (
        (tuple(int(c) for c in idx), array[idx].item())
        for idx in zip(*np.nonzero(array))
    )
    return Tensor.from_coo(name, rank_ids, points, shape=list(array.shape))


def tensor_to_dense(tensor: Tensor, shape: Optional[Sequence[int]] = None) -> np.ndarray:
    """Materialize a fibertree tensor as a dense numpy array.

    Requires integer coordinates (i.e. no flattened tuple ranks).  ``shape``
    overrides the tensor's recorded shape; missing extents are inferred from
    the maximum coordinate present.
    """
    if shape is None:
        shape = list(tensor.shape)
    shape = list(shape)
    points = list(tensor.leaves())
    for axis in range(len(shape)):
        if shape[axis] is None:
            extent = 0
            for point, _ in points:
                coord = point[axis]
                if isinstance(coord, tuple):
                    raise TypeError(
                        f"tensor {tensor.name} has tuple coordinates at rank "
                        f"{tensor.rank_ids[axis]}; densify before flattening"
                    )
                extent = max(extent, coord + 1)
            shape[axis] = extent
    out = np.zeros(shape)
    for point, value in points:
        out[point] = value
    return out


def tensor_from_scipy(name: str, rank_ids: Sequence[str], matrix) -> Tensor:
    """Build a 2-rank fibertree from any scipy sparse matrix."""
    if len(rank_ids) != 2:
        raise ValueError("scipy sparse matrices are 2-dimensional")
    coo = sp.coo_matrix(matrix)
    points = (
        ((int(r), int(c)), float(v))
        for r, c, v in zip(coo.row, coo.col, coo.data)
    )
    return Tensor.from_coo(name, rank_ids, points, shape=list(coo.shape))


def tensor_to_scipy(tensor: Tensor) -> sp.csr_matrix:
    """Materialize a 2-rank fibertree as a scipy CSR matrix."""
    if tensor.num_ranks != 2:
        raise ValueError("only 2-rank tensors convert to scipy matrices")
    rows, cols, data = [], [], []
    for (r, c), v in tensor.leaves():
        rows.append(r)
        cols.append(c)
        data.append(v)
    shape = tuple(
        s if s is not None else (max(axis) + 1 if axis else 0)
        for s, axis in zip(tensor.shape, (rows, cols))
    )
    return sp.csr_matrix((data, (rows, cols)), shape=shape)
