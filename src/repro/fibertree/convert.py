"""Conversions between fibertree tensors and numpy / scipy representations.

These are the bridges used by tests (to validate kernel outputs against dense
references) and by workload loaders (to ingest scipy sparse matrices).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .arena import COORD_DTYPE, VALUE_DTYPE, FlatArena
from .tensor import Tensor


def tensor_from_dense(
    name: str, rank_ids: Sequence[str], array: np.ndarray
) -> Tensor:
    """Build a (sparse) fibertree from a dense numpy array, omitting zeros."""
    array = np.asarray(array)
    if array.ndim != len(rank_ids):
        raise ValueError(
            f"array has {array.ndim} dims but {len(rank_ids)} rank ids given"
        )
    points = (
        (tuple(int(c) for c in idx), array[idx].item())
        for idx in zip(*np.nonzero(array))
    )
    return Tensor.from_coo(name, rank_ids, points, shape=list(array.shape))


def tensor_to_dense(tensor: Tensor, shape: Optional[Sequence[int]] = None) -> np.ndarray:
    """Materialize a fibertree tensor as a dense numpy array.

    Requires integer coordinates (i.e. no flattened tuple ranks).  ``shape``
    overrides the tensor's recorded shape; missing extents are inferred from
    the maximum coordinate present.
    """
    if shape is None:
        shape = list(tensor.shape)
    shape = list(shape)
    points = list(tensor.leaves())
    for axis in range(len(shape)):
        if shape[axis] is None:
            extent = 0
            for point, _ in points:
                coord = point[axis]
                if isinstance(coord, tuple):
                    raise TypeError(
                        f"tensor {tensor.name} has tuple coordinates at rank "
                        f"{tensor.rank_ids[axis]}; densify before flattening"
                    )
                extent = max(extent, coord + 1)
            shape[axis] = extent
    out = np.zeros(shape)
    for point, value in points:
        out[point] = value
    return out


def tensor_from_scipy(name: str, rank_ids: Sequence[str], matrix) -> Tensor:
    """Build a 2-rank fibertree from any scipy sparse matrix.

    Ingestion routes through :func:`arena_from_scipy`: CSR buffers repack
    directly into flat arena levels (no per-point sorting), and the boxed
    fibertree is rebuilt from the arena.
    """
    if len(rank_ids) != 2:
        raise ValueError("scipy sparse matrices are 2-dimensional")
    csr = sp.csr_matrix(matrix)
    return arena_from_scipy(csr).to_tensor(name, rank_ids,
                                           shape=list(csr.shape))


def arena_from_scipy(matrix) -> FlatArena:
    """Build a 2-level :class:`FlatArena` straight from a scipy matrix.

    A CSR matrix *is* already a flat structure-of-arrays fibertree — row
    pointers are segment pointers, column indices are leaf coordinates —
    so this conversion never materializes boxed fibers: it drops empty
    rows, splits explicit zeros out, and repacks the CSR buffers as
    arena levels.
    """
    csr = sp.csr_matrix(matrix)
    csr.sum_duplicates()
    csr.eliminate_zeros()
    indptr = np.asarray(csr.indptr, dtype=COORD_DTYPE)
    occupied = np.nonzero(indptr[1:] > indptr[:-1])[0]
    row_coords = occupied.astype(COORD_DTYPE)
    segs1 = np.empty(len(row_coords) + 1, dtype=COORD_DTYPE)
    segs1[0] = 0
    segs1[1:] = indptr[occupied + 1]
    arena = FlatArena(
        depth=2,
        coords=[row_coords,
                np.asarray(csr.indices, dtype=COORD_DTYPE).copy()],
        segs=[np.array([0, len(row_coords)], dtype=COORD_DTYPE), segs1],
        vals=np.asarray(csr.data, dtype=VALUE_DTYPE).copy(),
        ranges=[[None], [None] * len(row_coords)],
    )
    arena.validate()
    return arena


def arena_to_scipy(arena: FlatArena, shape: Optional[Sequence[int]] = None):
    """Materialize a 2-level arena as a scipy CSR matrix."""
    if arena.depth != 2:
        raise ValueError("only 2-level arenas convert to scipy matrices")
    row_coords = np.asarray(arena.coords[0], dtype=COORD_DTYPE)
    segs1 = np.asarray(arena.segs[1], dtype=COORD_DTYPE)
    rows = np.repeat(row_coords, np.diff(segs1))
    cols = np.asarray(arena.coords[1], dtype=COORD_DTYPE)
    if shape is None:
        shape = (
            (int(rows.max()) + 1) if rows.size else 0,
            (int(cols.max()) + 1) if cols.size else 0,
        )
    vals = np.asarray(arena.vals, dtype=VALUE_DTYPE)
    return sp.csr_matrix((vals, (rows, cols)), shape=tuple(shape))


def tensor_to_scipy(tensor: Tensor) -> sp.csr_matrix:
    """Materialize a 2-rank fibertree as a scipy CSR matrix."""
    if tensor.num_ranks != 2:
        raise ValueError("only 2-rank tensors convert to scipy matrices")
    rows, cols, data = [], [], []
    for (r, c), v in tensor.leaves():
        rows.append(r)
        cols.append(c)
        data.append(v)
    shape = tuple(
        s if s is not None else (max(axis) + 1 if axis else 0)
        for s, axis in zip(tensor.shape, (rows, cols))
    )
    return sp.csr_matrix((data, (rows, cols)), shape=shape)
