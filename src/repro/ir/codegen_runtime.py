"""Runtime helpers imported by TeAAL-generated loop-nest code.

The code generator (:mod:`repro.ir.codegen`) emits plain Python whose only
dependencies are the fibertree API and these helpers: k-way intersection
and union co-iterators, chunk lookup for split (upper) levels, affine
projection windows, and reduction into the output fibertree.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..fibertree.fiber import Fiber


def coiterate_intersect(*fibers: Fiber) -> Iterator[Tuple[Any, List[Any]]]:
    """Yield (coord, [payloads...]) present in every fiber."""
    if not fibers or any(f is None or not isinstance(f, Fiber) for f in fibers):
        return
    positions = [0] * len(fibers)
    lengths = [len(f) for f in fibers]
    while all(p < n for p, n in zip(positions, lengths)):
        heads = [f.coords[p] for f, p in zip(fibers, positions)]
        top = max(heads)
        if all(h == top for h in heads):
            yield top, [f.payloads[p] for f, p in zip(fibers, positions)]
            positions = [p + 1 for p in positions]
        else:
            positions = [
                bisect.bisect_left(f.coords, top, p)
                for f, p in zip(fibers, positions)
            ]


def coiterate_union(*fibers: Optional[Fiber]) -> Iterator[Tuple[Any, List[Any]]]:
    """Yield (coord, [payload-or-None...]) present in any fiber."""
    live = [f for f in fibers if isinstance(f, Fiber)]
    if not live:
        return
    coords = sorted(set().union(*(set(f.coords) for f in live)))
    for c in coords:
        yield c, [
            f.get_payload(c) if isinstance(f, Fiber) else None
            for f in fibers
        ]


def iterate(fiber: Optional[Fiber]) -> Iterator[Tuple[Any, List[Any]]]:
    """Single-fiber iteration in the co-iterator calling convention."""
    if not isinstance(fiber, Fiber):
        return
    for c, p in fiber:
        yield c, [p]


def lookup(node: Any, coord: Any) -> Any:
    """Payload lookup; None when the node is absent or not a fiber."""
    if not isinstance(node, Fiber):
        return None
    return node.get_payload(coord)


def lookup_chunk(node: Any, coord: Any) -> Any:
    """Find the split-level chunk containing an original coordinate."""
    if not isinstance(node, Fiber) or not node.coords:
        return None
    pos = bisect.bisect_right(node.coords, coord) - 1
    if pos < 0:
        return None
    return node.payloads[pos]


def project(node: Any, offset: int, shape: int) -> Optional[Fiber]:
    """Affine projection: shift coordinates by ``offset`` into [0, shape)."""
    if not isinstance(node, Fiber):
        return None
    return node.project(offset, lo=0, hi=shape)


def scalar(node: Any) -> Optional[float]:
    """Leaf value of a cursor; None when absent or still a fiber."""
    if node is None or isinstance(node, Fiber):
        return None
    return node


def reduce_into(root: Fiber, point: tuple, value: Any, opset,
                overwrite: bool) -> None:
    """Insert ``value`` at ``point``, reducing with ``opset.add`` on
    collision (or overwriting, for take() Einsums)."""
    node = root
    for coord in point[:-1]:
        node = node.get_payload_ref(coord, make=Fiber)
    leaf = point[-1] if point else 0
    existing = node.get_payload(leaf)
    if existing is None or overwrite:
        node.set_payload(leaf, value)
    else:
        node.set_payload(leaf, opset.add(existing, value))
