"""Runtime helpers imported by TeAAL-generated loop-nest code.

The code generator (:mod:`repro.ir.codegen`) emits plain Python whose only
dependencies are the fibertree API and these helpers: k-way intersection
and union co-iterators, chunk lookup for split (upper) levels, affine
projection and occupancy-follower windows, and reduction into the output
fibertree.

Every co-iterator and lookup has an optional *trace* argument.  When a
generated kernel runs in traced mode it passes the live
:class:`~repro.model.traces.TraceSink` (plus the cursor paths and loop
context) through these arguments, and the helpers emit exactly the same
event stream — same events, same order — as the interpreting executor.
The differential test suite (``tests/ir/test_codegen_differential.py``)
enforces that equivalence.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from ..fibertree.fiber import Fiber


def _live(fibers) -> List[Tuple[int, Fiber]]:
    """Indices and values of the inputs that are actual fibers.

    Mirrors the interpreter's participant selection: a cursor that is
    ``None`` (empty) or a scalar simply does not participate at this rank
    (conjunctive-empty subtrees are pruned by the generated code *before*
    the co-iteration call, so by this point absence only means "skip").
    """
    return [(j, f) for j, f in enumerate(fibers) if isinstance(f, Fiber)]


def _payload_row(n: int, live_items) -> List[Any]:
    row: List[Any] = [None] * n
    for j, p in live_items:
        row[j] = p
    return row


def coiterate_intersect(*fibers, trace=None) -> Iterator[Tuple[Any, List[Any]]]:
    """Yield (coord, [payload-or-None...]) present in every live fiber.

    Payloads are aligned with the inputs; positions whose input was not a
    fiber receive ``None``.  With a single live input this degrades to
    plain iteration (matching the interpreter, which prices no
    intersection there).  ``trace`` is ``(sink, rank, infos, ctx)`` with
    ``infos[j] = (tensor, of, path)`` aligned to the inputs.
    """
    n = len(fibers)
    live = _live(fibers)
    if not live:
        return
    if len(live) == 1:
        j, fiber = live[0]
        if trace is not None:
            sink, _rank, infos, ctx = trace
            tensor, of, path = infos[j]
            for c, p in fiber:
                sink.read(tensor, of, "coord", path + (c,), ctx)
                yield c, _payload_row(n, [(j, p)])
        else:
            for c, p in fiber:
                yield c, _payload_row(n, [(j, p)])
        return

    idx = [j for j, _ in live]
    fs = [f for _, f in live]
    positions = [0] * len(fs)
    lengths = [len(f) for f in fs]
    visited = 0
    matched = 0
    sink = None
    if trace is not None:
        sink, rank, infos, ctx = trace
    while all(p < m for p, m in zip(positions, lengths)):
        heads = [f.coords[p] for f, p in zip(fs, positions)]
        top = max(heads)
        if all(h == top for h in heads):
            matched += 1
            visited += len(fs)
            if sink is not None:
                for j in idx:
                    tensor, of, path = infos[j]
                    sink.read(tensor, of, "coord", path + (top,), ctx)
            yield top, _payload_row(
                n, [(j, f.payloads[p]) for j, f, p in zip(idx, fs, positions)]
            )
            positions = [p + 1 for p in positions]
        else:
            for k in range(len(fs)):
                f, p = fs[k], positions[k]
                if f.coords[p] < top:
                    nxt = bisect.bisect_left(f.coords, top, p)
                    visited += nxt - p
                    if sink is not None:
                        tensor, of, path = infos[idx[k]]
                        for q in range(p, nxt):
                            sink.read(tensor, of, "coord",
                                      path + (f.coords[q],), ctx)
                    positions[k] = nxt
    if sink is not None:
        sink.isect(rank, visited, matched)


def coiterate_union(*fibers, trace=None) -> Iterator[Tuple[Any, List[Any]]]:
    """Yield (coord, [payload-or-None...]) present in any live fiber."""
    n = len(fibers)
    live = _live(fibers)
    if not live:
        return
    coords = sorted(set().union(*(set(f.coords) for _, f in live)))
    sink = None
    if trace is not None:
        sink, _rank, infos, ctx = trace
    for c in coords:
        row: List[Any] = [None] * n
        for j, f in live:
            if sink is not None:
                tensor, of, path = infos[j]
                sink.read(tensor, of, "coord", path + (c,), ctx)
            row[j] = f.get_payload(c)
        yield c, row


def iterate(fiber: Optional[Fiber], trace=None) -> Iterator[Tuple[Any, List[Any]]]:
    """Single-fiber iteration in the co-iterator calling convention.

    ``trace`` is ``(sink, tensor, of, path, ctx)``.
    """
    if not isinstance(fiber, Fiber):
        return
    if trace is not None:
        sink, tensor, of, path, ctx = trace
        for c, p in fiber:
            sink.read(tensor, of, "coord", path + (c,), ctx)
            yield c, [p]
    else:
        for c, p in fiber:
            yield c, [p]


def lookup(node: Any, coord: Any) -> Any:
    """Payload lookup; None when the node is absent or not a fiber."""
    if not isinstance(node, Fiber):
        return None
    return node.get_payload(coord)


def lookup_t(node: Any, coord: Any, path: tuple, sink, tensor: str,
             of: str, ctx) -> Tuple[Any, tuple]:
    """Traced payload lookup: returns (payload, extended path)."""
    if not isinstance(node, Fiber):
        return None, path
    key = path + (coord,)
    sink.read(tensor, of, "coord", key, ctx)
    payload = node.get_payload(coord)
    if payload is not None:
        sink.read(tensor, of, "payload", key, ctx)
    return payload, key


def lookup_chunk(node: Any, coord: Any) -> Any:
    """Find the split-level chunk containing an original coordinate."""
    if not isinstance(node, Fiber) or not node.coords:
        return None
    pos = bisect.bisect_right(node.coords, coord) - 1
    if pos < 0:
        return None
    return node.payloads[pos]


def lookup_chunk_t(node: Any, coord: Any, path: tuple, sink, tensor: str,
                   of: str, ctx) -> Tuple[Any, tuple]:
    """Traced chunk lookup: returns (chunk, path extended by chunk coord)."""
    if not isinstance(node, Fiber) or not node.coords:
        return None, path
    pos = bisect.bisect_right(node.coords, coord) - 1
    if pos < 0:
        return None, path
    key = path + (node.coords[pos],)
    sink.read(tensor, of, "coord", key, ctx)
    return node.payloads[pos], key


def project(node: Any, offset: int, shape: int) -> Optional[Fiber]:
    """Affine projection: shift coordinates by ``offset`` into [0, shape)."""
    if not isinstance(node, Fiber):
        return None
    return node.project(offset, lo=0, hi=shape)


def window_of(payload: Any, outer) -> Optional[tuple]:
    """Partition window carried by a chunk payload (leader side).

    A chunk descended from a split-upper level records the half-open
    coordinate interval it covers; occupancy followers slice their own
    (unsplit) fibers to that window.  A non-fiber payload keeps whatever
    window the enclosing scope established.
    """
    if isinstance(payload, Fiber):
        return payload.coord_range
    return outer


def window(node: Any, rng: Optional[tuple]) -> Any:
    """Restrict a follower fiber to the leader's partition window."""
    if not isinstance(node, Fiber) or rng is None or not node.coords:
        return node
    lo, hi = rng
    if hi is None:
        hi = node.coords[-1] + 1
    return node.slice(lo, hi)


def scalar(node: Any) -> Optional[float]:
    """Leaf value of a cursor; None when absent or still a fiber."""
    if node is None or isinstance(node, Fiber):
        return None
    return node


# ----------------------------------------------------------------------
# Flat-span helpers (used by the arena-native kernels of codegen_flat)
# ----------------------------------------------------------------------
# A flat cursor is a half-open position span [lo, hi) into one level's
# coordinate buffer of a FlatArena; ``lo is None`` marks an absent cursor.
# These helpers mirror the Fiber-based helpers above exactly — same
# membership, same visit counting — so the flat kernels stay differentially
# equal to the interpreter.

def span_find(coords, lo: Optional[int], hi: int, coord) -> int:
    """Position of ``coord`` in the span, or -1 when absent."""
    i = bisect.bisect_left(coords, coord, lo, hi)
    if i < hi and coords[i] == coord:
        return i
    return -1


def span_chunk(coords, lo: Optional[int], hi: int, coord) -> int:
    """Position of the split-level chunk containing ``coord``, or -1."""
    i = bisect.bisect_right(coords, coord, lo, hi) - 1
    return i if i >= lo else -1


def window_span(coords, lo, hi, rng):
    """Narrow a span to a leader's partition window (cf. :func:`window`)."""
    if lo is None or rng is None or lo == hi:
        return lo, hi
    wlo, whi = rng
    if whi is None:
        whi = coords[hi - 1] + 1
    return (
        bisect.bisect_left(coords, wlo, lo, hi),
        bisect.bisect_left(coords, whi, lo, hi),
    )


def project_span(coords, lo, hi, off: int, shape: int):
    """Narrow a span to coordinates whose ``c + off`` lands in [0, shape)."""
    if lo is None:
        return None, None
    return (
        bisect.bisect_left(coords, -off, lo, hi),
        bisect.bisect_left(coords, shape - off, lo, hi),
    )


def flat_isect(specs, stats) -> Iterator[Tuple[Any, List[int]]]:
    """K-way intersection over flat spans; yields (coord, positions).

    ``specs[j] = (coords, lo, hi, off)``; ``lo is None`` means input ``j``
    does not participate (mirroring :func:`coiterate_intersect`'s liveness
    rule).  The positions row holds -1 for non-participants.  ``stats`` is
    a list of ``len(specs) + 2`` counters updated *eagerly* (so an
    abandoned generator leaves partial-but-accurate tallies, exactly like
    the traced event stream): per-input coordinates visited, then total
    visited, then total matched — the totals are only written on matches
    and skips, never on completion, so they line up with the traced
    ``isect`` accounting.
    """
    n = len(specs)
    live = [j for j in range(n) if specs[j][1] is not None]
    if not live:
        return
    if len(live) == 1:
        j = live[0]
        coords, lo, hi, off = specs[j]
        for p in range(lo, hi):
            stats[j] += 1
            row = [-1] * n
            row[j] = p
            c = coords[p]
            yield (c + off if off else c), row
        return
    ptrs = [specs[j][1] for j in live]
    ends = [specs[j][2] for j in live]
    while all(p < e for p, e in zip(ptrs, ends)):
        heads = []
        for k, j in enumerate(live):
            coords, _, _, off = specs[j]
            c = coords[ptrs[k]]
            heads.append(c + off if off else c)
        top = max(heads)
        if all(h == top for h in heads):
            row = [-1] * n
            for k, j in enumerate(live):
                stats[j] += 1
                row[j] = ptrs[k]
            stats[n] += len(live)
            stats[n + 1] += 1
            yield top, row
            ptrs = [p + 1 for p in ptrs]
        else:
            for k, j in enumerate(live):
                if heads[k] < top:
                    coords, _, _, off = specs[j]
                    target = top - off if off else top
                    nxt = bisect.bisect_left(coords, target, ptrs[k], ends[k])
                    stats[j] += nxt - ptrs[k]
                    stats[n] += nxt - ptrs[k]
                    ptrs[k] = nxt


def flat_union(specs, stats) -> Iterator[Tuple[Any, List[int]]]:
    """K-way merge union over flat spans; yields (coord, positions).

    Every participating input counts one visited coordinate per union
    coordinate (present or not), matching :func:`coiterate_union`'s traced
    read stream.  ``stats[j]`` tallies input ``j``'s visits eagerly.
    """
    n = len(specs)
    live = [j for j in range(n) if specs[j][1] is not None]
    if not live:
        return
    ptrs = {j: specs[j][1] for j in live}
    while True:
        c = None
        for j in live:
            coords, _, hi, off = specs[j]
            if ptrs[j] < hi:
                h = coords[ptrs[j]]
                if off:
                    h = h + off
                if c is None or h < c:
                    c = h
        if c is None:
            return
        row = [-1] * n
        for j in live:
            stats[j] += 1
            coords, _, hi, off = specs[j]
            if ptrs[j] < hi:
                h = coords[ptrs[j]]
                if off:
                    h = h + off
                if h == c:
                    row[j] = ptrs[j]
                    ptrs[j] += 1
        yield c, row


def reduce_into(root: Fiber, point: tuple, value: Any, opset,
                overwrite: bool) -> int:
    """Insert ``value`` at ``point``, reducing with ``opset.add`` on
    collision (or overwriting, for take() Einsums).  Returns the number
    of reduction adds performed (0 or 1) so traced kernels can count
    them exactly like the interpreter."""
    node = root
    for coord in point[:-1]:
        node = node.get_payload_ref(coord, make=Fiber)
    leaf = point[-1] if point else 0
    existing = node.get_payload(leaf)
    if existing is None or overwrite:
        node.set_payload(leaf, value)
        return 0
    node.set_payload(leaf, opset.add(existing, value))
    return 1
