"""Runtime helpers imported by TeAAL-generated loop-nest code.

The code generator (:mod:`repro.ir.codegen`) emits plain Python whose only
dependencies are the fibertree API and these helpers: k-way intersection
and union co-iterators, chunk lookup for split (upper) levels, affine
projection and occupancy-follower windows, and reduction into the output
fibertree.

Every co-iterator and lookup has an optional *trace* argument.  When a
generated kernel runs in traced mode it passes the live
:class:`~repro.model.traces.TraceSink` (plus the cursor paths and loop
context) through these arguments, and the helpers emit exactly the same
event stream — same events, same order — as the interpreting executor.
The differential test suite (``tests/ir/test_codegen_differential.py``)
enforces that equivalence.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from ..fibertree.fiber import Fiber


def _live(fibers) -> List[Tuple[int, Fiber]]:
    """Indices and values of the inputs that are actual fibers.

    Mirrors the interpreter's participant selection: a cursor that is
    ``None`` (empty) or a scalar simply does not participate at this rank
    (conjunctive-empty subtrees are pruned by the generated code *before*
    the co-iteration call, so by this point absence only means "skip").
    """
    return [(j, f) for j, f in enumerate(fibers) if isinstance(f, Fiber)]


def _payload_row(n: int, live_items) -> List[Any]:
    row: List[Any] = [None] * n
    for j, p in live_items:
        row[j] = p
    return row


def coiterate_intersect(*fibers, trace=None) -> Iterator[Tuple[Any, List[Any]]]:
    """Yield (coord, [payload-or-None...]) present in every live fiber.

    Payloads are aligned with the inputs; positions whose input was not a
    fiber receive ``None``.  With a single live input this degrades to
    plain iteration (matching the interpreter, which prices no
    intersection there).  ``trace`` is ``(sink, rank, infos, ctx)`` with
    ``infos[j] = (tensor, of, path)`` aligned to the inputs.
    """
    n = len(fibers)
    live = _live(fibers)
    if not live:
        return
    if len(live) == 1:
        j, fiber = live[0]
        if trace is not None:
            sink, _rank, infos, ctx = trace
            tensor, of, path = infos[j]
            for c, p in fiber:
                sink.read(tensor, of, "coord", path + (c,), ctx)
                yield c, _payload_row(n, [(j, p)])
        else:
            for c, p in fiber:
                yield c, _payload_row(n, [(j, p)])
        return

    idx = [j for j, _ in live]
    fs = [f for _, f in live]
    positions = [0] * len(fs)
    lengths = [len(f) for f in fs]
    visited = 0
    matched = 0
    sink = None
    if trace is not None:
        sink, rank, infos, ctx = trace
    while all(p < m for p, m in zip(positions, lengths)):
        heads = [f.coords[p] for f, p in zip(fs, positions)]
        top = max(heads)
        if all(h == top for h in heads):
            matched += 1
            visited += len(fs)
            if sink is not None:
                for j in idx:
                    tensor, of, path = infos[j]
                    sink.read(tensor, of, "coord", path + (top,), ctx)
            yield top, _payload_row(
                n, [(j, f.payloads[p]) for j, f, p in zip(idx, fs, positions)]
            )
            positions = [p + 1 for p in positions]
        else:
            for k in range(len(fs)):
                f, p = fs[k], positions[k]
                if f.coords[p] < top:
                    nxt = bisect.bisect_left(f.coords, top, p)
                    visited += nxt - p
                    if sink is not None:
                        tensor, of, path = infos[idx[k]]
                        for q in range(p, nxt):
                            sink.read(tensor, of, "coord",
                                      path + (f.coords[q],), ctx)
                    positions[k] = nxt
    if sink is not None:
        sink.isect(rank, visited, matched)


def coiterate_union(*fibers, trace=None) -> Iterator[Tuple[Any, List[Any]]]:
    """Yield (coord, [payload-or-None...]) present in any live fiber."""
    n = len(fibers)
    live = _live(fibers)
    if not live:
        return
    coords = sorted(set().union(*(set(f.coords) for _, f in live)))
    sink = None
    if trace is not None:
        sink, _rank, infos, ctx = trace
    for c in coords:
        row: List[Any] = [None] * n
        for j, f in live:
            if sink is not None:
                tensor, of, path = infos[j]
                sink.read(tensor, of, "coord", path + (c,), ctx)
            row[j] = f.get_payload(c)
        yield c, row


def iterate(fiber: Optional[Fiber], trace=None) -> Iterator[Tuple[Any, List[Any]]]:
    """Single-fiber iteration in the co-iterator calling convention.

    ``trace`` is ``(sink, tensor, of, path, ctx)``.
    """
    if not isinstance(fiber, Fiber):
        return
    if trace is not None:
        sink, tensor, of, path, ctx = trace
        for c, p in fiber:
            sink.read(tensor, of, "coord", path + (c,), ctx)
            yield c, [p]
    else:
        for c, p in fiber:
            yield c, [p]


def lookup(node: Any, coord: Any) -> Any:
    """Payload lookup; None when the node is absent or not a fiber."""
    if not isinstance(node, Fiber):
        return None
    return node.get_payload(coord)


def lookup_t(node: Any, coord: Any, path: tuple, sink, tensor: str,
             of: str, ctx) -> Tuple[Any, tuple]:
    """Traced payload lookup: returns (payload, extended path)."""
    if not isinstance(node, Fiber):
        return None, path
    key = path + (coord,)
    sink.read(tensor, of, "coord", key, ctx)
    payload = node.get_payload(coord)
    if payload is not None:
        sink.read(tensor, of, "payload", key, ctx)
    return payload, key


def lookup_chunk(node: Any, coord: Any) -> Any:
    """Find the split-level chunk containing an original coordinate."""
    if not isinstance(node, Fiber) or not node.coords:
        return None
    pos = bisect.bisect_right(node.coords, coord) - 1
    if pos < 0:
        return None
    return node.payloads[pos]


def lookup_chunk_t(node: Any, coord: Any, path: tuple, sink, tensor: str,
                   of: str, ctx) -> Tuple[Any, tuple]:
    """Traced chunk lookup: returns (chunk, path extended by chunk coord)."""
    if not isinstance(node, Fiber) or not node.coords:
        return None, path
    pos = bisect.bisect_right(node.coords, coord) - 1
    if pos < 0:
        return None, path
    key = path + (node.coords[pos],)
    sink.read(tensor, of, "coord", key, ctx)
    return node.payloads[pos], key


def project(node: Any, offset: int, shape: int) -> Optional[Fiber]:
    """Affine projection: shift coordinates by ``offset`` into [0, shape)."""
    if not isinstance(node, Fiber):
        return None
    return node.project(offset, lo=0, hi=shape)


def window_of(payload: Any, outer) -> Optional[tuple]:
    """Partition window carried by a chunk payload (leader side).

    A chunk descended from a split-upper level records the half-open
    coordinate interval it covers; occupancy followers slice their own
    (unsplit) fibers to that window.  A non-fiber payload keeps whatever
    window the enclosing scope established.
    """
    if isinstance(payload, Fiber):
        return payload.coord_range
    return outer


def window(node: Any, rng: Optional[tuple]) -> Any:
    """Restrict a follower fiber to the leader's partition window."""
    if not isinstance(node, Fiber) or rng is None or not node.coords:
        return node
    lo, hi = rng
    if hi is None:
        hi = node.coords[-1] + 1
    return node.slice(lo, hi)


def scalar(node: Any) -> Optional[float]:
    """Leaf value of a cursor; None when absent or still a fiber."""
    if node is None or isinstance(node, Fiber):
        return None
    return node


# ----------------------------------------------------------------------
# Flat-span helpers (used by the arena-native kernels of codegen_flat)
# ----------------------------------------------------------------------
# A flat cursor is a half-open position span [lo, hi) into one level's
# coordinate buffer of a FlatArena; ``lo is None`` marks an absent cursor.
# These helpers mirror the Fiber-based helpers above exactly — same
# membership, same visit counting — so the flat kernels stay differentially
# equal to the interpreter.

def span_find(coords, lo: Optional[int], hi: int, coord) -> int:
    """Position of ``coord`` in the span, or -1 when absent."""
    i = bisect.bisect_left(coords, coord, lo, hi)
    if i < hi and coords[i] == coord:
        return i
    return -1


def span_chunk(coords, lo: Optional[int], hi: int, coord) -> int:
    """Position of the split-level chunk containing ``coord``, or -1."""
    i = bisect.bisect_right(coords, coord, lo, hi) - 1
    return i if i >= lo else -1


def window_span(coords, lo, hi, rng):
    """Narrow a span to a leader's partition window (cf. :func:`window`)."""
    if lo is None or rng is None or lo == hi:
        return lo, hi
    wlo, whi = rng
    if whi is None:
        whi = coords[hi - 1] + 1
    return (
        bisect.bisect_left(coords, wlo, lo, hi),
        bisect.bisect_left(coords, whi, lo, hi),
    )


def project_span(coords, lo, hi, off: int, shape: int):
    """Narrow a span to coordinates whose ``c + off`` lands in [0, shape)."""
    if lo is None:
        return None, None
    return (
        bisect.bisect_left(coords, -off, lo, hi),
        bisect.bisect_left(coords, shape - off, lo, hi),
    )


def flat_isect(specs, stats, touches=None) -> Iterator[Tuple[Any, List[int]]]:
    """K-way intersection over flat spans; yields (coord, positions).

    ``specs[j] = (coords, lo, hi, off)``; ``lo is None`` means input ``j``
    does not participate (mirroring :func:`coiterate_intersect`'s liveness
    rule).  The positions row holds -1 for non-participants.  ``stats`` is
    a list of ``len(specs) + 2`` counters updated *eagerly* (so an
    abandoned generator leaves partial-but-accurate tallies, exactly like
    the traced event stream): per-input coordinates visited, then total
    visited, then total matched — the totals are only written on matches
    and skips, never on completion, so they line up with the traced
    ``isect`` accounting.

    ``touches`` (fused kernels) is a per-input tuple of callables or
    ``None``: ``touches[j](c)`` fires once per coordinate input ``j``
    visits, in exactly the order the traced co-iterator emits its coord
    read events, so buffer/cache state machines see the same stream.
    """
    n = len(specs)
    live = [j for j in range(n) if specs[j][1] is not None]
    if not live:
        return
    if touches is not None and not any(touches):
        touches = None
    if len(live) == 1:
        j = live[0]
        coords, lo, hi, off = specs[j]
        tj = touches[j] if touches else None
        for p in range(lo, hi):
            stats[j] += 1
            row = [-1] * n
            row[j] = p
            c = coords[p]
            if off:
                c = c + off
            if tj is not None:
                tj(c)
            yield c, row
        return
    ptrs = [specs[j][1] for j in live]
    ends = [specs[j][2] for j in live]
    while all(p < e for p, e in zip(ptrs, ends)):
        heads = []
        for k, j in enumerate(live):
            coords, _, _, off = specs[j]
            c = coords[ptrs[k]]
            heads.append(c + off if off else c)
        top = max(heads)
        if all(h == top for h in heads):
            row = [-1] * n
            for k, j in enumerate(live):
                stats[j] += 1
                row[j] = ptrs[k]
                if touches is not None and touches[j] is not None:
                    touches[j](top)
            stats[n] += len(live)
            stats[n + 1] += 1
            yield top, row
            ptrs = [p + 1 for p in ptrs]
        else:
            for k, j in enumerate(live):
                if heads[k] < top:
                    coords, _, _, off = specs[j]
                    target = top - off if off else top
                    nxt = bisect.bisect_left(coords, target, ptrs[k], ends[k])
                    stats[j] += nxt - ptrs[k]
                    stats[n] += nxt - ptrs[k]
                    if touches is not None and touches[j] is not None:
                        tj = touches[j]
                        for q in range(ptrs[k], nxt):
                            tj(coords[q] + off if off else coords[q])
                    ptrs[k] = nxt


def flat_union(specs, stats, touches=None) -> Iterator[Tuple[Any, List[int]]]:
    """K-way merge union over flat spans; yields (coord, positions).

    Every participating input counts one visited coordinate per union
    coordinate (present or not), matching :func:`coiterate_union`'s traced
    read stream.  ``stats[j]`` tallies input ``j``'s visits eagerly.
    ``touches[j]`` (fused kernels) fires per visited coordinate, in the
    traced event order.
    """
    n = len(specs)
    live = [j for j in range(n) if specs[j][1] is not None]
    if not live:
        return
    if touches is not None and not any(touches):
        touches = None
    ptrs = {j: specs[j][1] for j in live}
    while True:
        c = None
        for j in live:
            coords, _, hi, off = specs[j]
            if ptrs[j] < hi:
                h = coords[ptrs[j]]
                if off:
                    h = h + off
                if c is None or h < c:
                    c = h
        if c is None:
            return
        row = [-1] * n
        for j in live:
            stats[j] += 1
            if touches is not None and touches[j] is not None:
                touches[j](c)
            coords, _, hi, off = specs[j]
            if ptrs[j] < hi:
                h = coords[ptrs[j]]
                if off:
                    h = h + off
                if h == c:
                    row[j] = ptrs[j]
                    ptrs[j] += 1
        yield c, row


# ----------------------------------------------------------------------
# Vector-span primitives (used by the "vector" kernel flavor)
# ----------------------------------------------------------------------
# The vector kernels price an entire innermost-rank span with batched
# numpy ops instead of one Python iteration per element.  Exactness is
# the contract: every helper here reproduces, bit for bit, what the
# scalar counted/fused loop over the same span would have produced —
# including float accumulation order (``np.add.accumulate`` is a
# sequential left fold, unlike ``np.sum``'s pairwise reduction) and the
# galloping co-iterator's partial visit counts.

#: Minimum combined span size before a leaf takes the numpy path; below
#: it the generated kernel falls through to its inline scalar loop
#: (numpy per-call overhead beats the win on tiny fibers — measured
#: break-even sits near ~100 combined coordinates).  Tests pin this to
#: 0 to force the vector path onto small inputs.
VLEAF_MIN = 96


def vec_ok(opset) -> bool:
    """Is this opset safe for elementwise numpy evaluation?

    True only when the opset declares it (``OpSet.vector_ok``): ``mul``
    must be numpy-elementwise and ``add`` must be IEEE ``+`` so that
    ``np.add.accumulate`` reproduces the scalar reduction bitwise.
    """
    return getattr(opset, "vector_ok", False)


def visect2(c0, a0: int, b0: int, off0: int,
            c1, a1: int, b1: int, off1: int):
    """Two-way intersection of flat spans, batched.

    Returns ``(q0, q1, v0, v1)``: the matched *absolute* positions in
    each buffer (ascending), and the per-input visited-coordinate counts
    of the galloping merge — exactly the tallies the scalar merge2 loop
    accumulates, including its early termination: the merge stops when
    either input exhausts, so trailing coordinates of the longer input
    past the shorter one's maximum are never visited.
    """
    s0 = c0[a0:b0]
    s1 = c1[a1:b1]
    if not (s0.size and s1.size):
        empty = np.empty(0, dtype=np.intp)
        return empty, empty, 0, 0
    if off0 == off1:
        h0, h1 = s0, s1  # equal shifts cancel in every comparison
        last0 = int(s0[-1])
        last1 = int(s1[-1])
    else:
        h0 = s0 + off0 if off0 else s0
        h1 = s1 + off1 if off1 else s1
        last0 = int(s0[-1]) + off0
        last1 = int(s1[-1]) + off1
    # Membership by binary search (cheaper than np.intersect1d, which
    # sorts the concatenation): for each h0 coordinate, the insertion
    # point in h1 either holds an equal coordinate (a match) or not.
    pos = np.searchsorted(h1, h0)
    hit = pos < h1.size
    np.bitwise_and(hit, h1[np.minimum(pos, h1.size - 1)] == h0, out=hit)
    q0 = np.nonzero(hit)[0]
    q1 = pos[hit]
    v0 = int(s0.size) if last0 <= last1 else \
        int(np.searchsorted(h0, last1, side="right"))
    v1 = int(s1.size) if last1 <= last0 else \
        int(np.searchsorted(h1, last0, side="right"))
    return q0 + a0, q1 + a1, v0, v1


def vtake(coords, positions, off: int) -> list:
    """Coordinates at ``positions`` (+``off``), as Python ints."""
    sel = coords[positions]
    if off:
        sel = sel + off
    return sel.tolist()


def vslice(coords, lo: int, hi: int, off: int) -> list:
    """Coordinates of ``[lo, hi)`` (+``off``), as Python ints."""
    sel = coords[lo:hi]
    if off:
        sel = sel + off
    return sel.tolist()


def vstamps(pre: tuple, post: tuple, inner) -> list:
    """Per-element spacetime stamp tuples: the innermost slot varies
    over ``inner`` (loop positions or coordinates), the rest is fixed.
    The innermost loop rank is usually last in stamp order, so the
    empty-``post`` form skips one tuple concatenation per element."""
    if post:
        return [pre + (s,) + post for s in inner]
    return [pre + (s,) for s in inner]


def vreduce(existing, values) -> float:
    """Left-fold reduction of a value vector into an existing payload.

    Bitwise equal to the scalar loop ``acc = v if acc is None else
    acc + v`` over ``values`` in order: ``np.add.accumulate`` is a
    sequential (not pairwise) accumulation, so intermediate roundings
    match IEEE ``+`` applied left to right.
    """
    if existing is None:
        if values.size == 1:
            return float(values[0])
        return float(np.add.accumulate(values)[-1])
    buf = np.empty(values.size + 1, dtype=np.float64)
    buf[0] = existing
    buf[1:] = values
    return float(np.add.accumulate(buf)[-1])


# ----------------------------------------------------------------------
# Fused component state machines (used by the "fused" kernel flavor)
# ----------------------------------------------------------------------
# These inline the buffet/cache models of repro.model.components into the
# generated arena loops: instead of routing one TraceSink event per touched
# element through ModelSink._route, the kernel calls these machines
# directly at the (statically known) touch sites.  Each machine replays
# the *exact* decision procedure of its model class — same keys, same
# evict windows, same float-accumulation sequence for cache occupancy —
# and accumulates pure integer tallies that
# ``BuffetModel.price_actions`` / ``CacheModel.price_actions`` absorb in
# one pass per Einsum.  The differential conformance suite
# (``tests/model/test_fused.py``) holds the resulting metrics bit-equal
# to the traced interpreter.

#: Sentinel evict-window cut for "the whole loop context" (the traced
#: ``BuffetModel._window_of`` scan falls off the end of ``ctx`` without
#: meeting ``evict_on``).
WHOLE_CTX = 1 << 30


class FusedBuffet:
    """Explicitly-managed buffer state machine over precomputed keys.

    Mirrors :class:`repro.model.components.BuffetModel` exactly:
    ``key_depth`` truncates coordinate paths for subtree/eager coverage,
    ``cut`` is the static evict-window prefix length of the loop context
    (``0`` when the binding has no ``evict-on`` rank, :data:`WHOLE_CTX`
    when the rank never appears in this Einsum's loop order).
    """

    __slots__ = ("key_depth", "cut", "window", "present", "dirty",
                 "ever_drained", "reads", "writes", "fills", "drains",
                 "partial_output_fills", "fill_reads", "_cx")

    def __init__(self, key_depth: Optional[int], cut: int):
        self.key_depth = key_depth
        self.cut = cut
        self.window: Optional[tuple] = None
        self.present: set = set()
        self.dirty: set = set()
        self.ever_drained: set = set()
        self.reads = 0
        self.writes = 0
        self.fills = 0
        self.drains = 0
        self.partial_output_fills = 0
        self.fill_reads = 0  # fills that read DRAM (read-miss + partial)
        # Identity memo of the last loop-context tuple rolled against:
        # the same ``cx`` object implies the same window, so consecutive
        # events inside one loop body skip the slice + compare entirely.
        self._cx: Optional[tuple] = None

    def _roll(self, cx: tuple) -> None:
        win = cx[:self.cut]
        if win != self.window:
            self._drain()
            self.window = win

    def _drain(self) -> None:
        if self.dirty:
            self.drains += len(self.dirty)
            self.ever_drained.update(self.dirty)
        self.present.clear()
        self.dirty.clear()

    def read(self, of: str, path: tuple, cx: tuple) -> None:
        if cx is not self._cx:
            self._roll(cx)
            self._cx = cx
        kd = self.key_depth
        key = path[:kd] if kd is not None else (of, path)
        self.reads += 1
        if key in self.present:
            return
        self.present.add(key)
        self.fills += 1
        self.fill_reads += 1

    def read2(self, of: str, path: tuple, cx: tuple) -> None:
        """Two consecutive reads of one key in one call.

        State- and tally-identical to ``read(); read()`` — a miss fills
        on the first read and hits on the second — fired by the fused
        kernels for the coord+payload event pair every present element
        emits back to back.
        """
        if cx is not self._cx:
            self._roll(cx)
            self._cx = cx
        kd = self.key_depth
        key = path[:kd] if kd is not None else (of, path)
        self.reads += 2
        if key in self.present:
            return
        self.present.add(key)
        self.fills += 1
        self.fill_reads += 1

    def read_span(self, of: str, base: tuple, coords, lo: int, hi: int,
                  off: int, cx: tuple) -> None:
        """Coord reads for every position in ``[lo, hi)`` of a span.

        Equivalent to calling :meth:`read` per coordinate (the traced
        stream of a galloped-over intersection skip), with the window
        roll hoisted — ``cx`` is constant across the span — and the
        per-element state inlined.  An empty span is a strict no-op: no
        events means no window roll.
        """
        if lo >= hi:
            return
        if cx is not self._cx:
            self._roll(cx)
            self._cx = cx
        kd = self.key_depth
        present = self.present
        self.reads += hi - lo
        fills = 0
        for q in range(lo, hi):
            c = coords[q]
            if off:
                c = c + off
            path = base + (c,)
            key = path[:kd] if kd is not None else (of, path)
            if key not in present:
                present.add(key)
                fills += 1
        self.fills += fills
        self.fill_reads += fills

    def pair_extra(self, n: int) -> None:
        """Upgrade ``n`` span reads to coord+payload pairs.

        A matched element fires :meth:`read2` where a galloped-over one
        fires :meth:`read`; the two differ only in the read tally (state
        transitions are identical), so a whole visited span batches as
        one :meth:`read_span` plus this bump for the matched subset.
        """
        self.reads += n

    def write(self, of: str, path: tuple, cx: tuple) -> None:
        if cx is not self._cx:
            self._roll(cx)
            self._cx = cx
        kd = self.key_depth
        key = path[:kd] if kd is not None else (of, path)
        self.writes += 1
        if key not in self.present:
            self.present.add(key)
            self.fills += 1
            if key in self.ever_drained:
                # Partial-output element returning for more reduction.
                self.partial_output_fills += 1
                self.fill_reads += 1
        self.dirty.add(key)

    def write_seq(self, of: str, path: tuple, rank: str, coords,
                  cx: tuple) -> None:
        """One :meth:`write` per coordinate, with the full leaf loop
        context reconstructed per element (``cx + ((rank, c),)``) —
        the exact sequence the scalar leaf emits for a reduction span.
        """
        write = self.write
        for c in coords:
            write(of, path, cx + ((rank, c),))

    def finish(self) -> None:
        self._drain()
        self.window = None
        self._cx = None

    def tallies(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "fills": self.fills,
            "drains": self.drains,
            "partial_output_fills": self.partial_output_fills,
            "fill_reads": self.fill_reads,
        }


class FusedCache:
    """Fully-associative LRU cache state machine over precomputed keys.

    Mirrors :class:`repro.model.components.CacheModel` exactly, including
    the float-accumulated ``occupied`` bits (repeated ``+=``/``-=`` in the
    same sequence, so capacity-edge eviction decisions are bit-identical
    to the traced model).
    """

    __slots__ = ("key_depth", "capacity_bits", "fill_bits", "lru",
                 "occupied", "hits", "misses", "writebacks",
                 "writes", "fill_reads")

    def __init__(self, key_depth: Optional[int], capacity_bits: float,
                 fill_bits: float):
        self.key_depth = key_depth
        self.capacity_bits = capacity_bits
        self.fill_bits = fill_bits
        self.lru: "OrderedDict" = OrderedDict()
        self.occupied = 0.0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.writes = 0
        self.fill_reads = 0  # clean misses that read DRAM

    # read/write inline the LRU touch (the hot path of cached tensors):
    # same decisions, in the same order, as CacheModel._touch.  The read
    # tally is derived (every touch hits or misses), keeping the hot
    # path down to the LRU bookkeeping itself.
    def read(self, of: str, path: tuple, cx: tuple) -> None:
        kd = self.key_depth
        key = path[:kd] if kd is not None else (of, path)
        lru = self.lru
        if key in lru:
            self.hits += 1
            lru.move_to_end(key)
            return
        self.misses += 1
        self.fill_reads += 1
        while self.occupied + self.fill_bits > self.capacity_bits and lru:
            _, old_dirty = lru.popitem(last=False)
            self.occupied -= self.fill_bits
            if old_dirty:
                self.writebacks += 1
        lru[key] = False
        self.occupied += self.fill_bits

    def read2(self, of: str, path: tuple, cx: tuple) -> None:
        """Two consecutive reads of one key in one call.

        Tally-identical to ``read(); read()``: a miss inserts at MRU and
        the immediate re-read hits it, so the second ``move_to_end`` is
        a no-op either way.
        """
        kd = self.key_depth
        key = path[:kd] if kd is not None else (of, path)
        lru = self.lru
        if key in lru:
            self.hits += 2
            lru.move_to_end(key)
            return
        self.misses += 1
        self.hits += 1
        self.fill_reads += 1
        while self.occupied + self.fill_bits > self.capacity_bits and lru:
            _, old_dirty = lru.popitem(last=False)
            self.occupied -= self.fill_bits
            if old_dirty:
                self.writebacks += 1
        lru[key] = False
        self.occupied += self.fill_bits

    def read_span(self, of: str, base: tuple, coords, lo: int, hi: int,
                  off: int, cx: tuple) -> None:
        """Coord reads for every position in ``[lo, hi)`` of a span —
        equivalent to per-coordinate :meth:`read` calls, with the LRU
        state held in locals across the loop."""
        kd = self.key_depth
        lru = self.lru
        fill = self.fill_bits
        cap = self.capacity_bits
        hits = misses = 0
        for q in range(lo, hi):
            c = coords[q]
            if off:
                c = c + off
            path = base + (c,)
            key = path[:kd] if kd is not None else (of, path)
            if key in lru:
                hits += 1
                lru.move_to_end(key)
                continue
            misses += 1
            while self.occupied + fill > cap and lru:
                _, old_dirty = lru.popitem(last=False)
                self.occupied -= fill
                if old_dirty:
                    self.writebacks += 1
            lru[key] = False
            self.occupied += fill
        self.hits += hits
        self.misses += misses
        self.fill_reads += misses

    def pair_extra(self, n: int) -> None:
        """Upgrade ``n`` span reads to coord+payload pairs.

        :meth:`read2`'s second read always hits the just-touched MRU key
        and its ``move_to_end`` is a no-op, so relative to per-element
        :meth:`read` calls a matched element adds exactly one hit.
        """
        self.hits += n

    def write(self, of: str, path: tuple, cx: tuple) -> None:
        self.writes += 1
        kd = self.key_depth
        key = path[:kd] if kd is not None else (of, path)
        lru = self.lru
        if key in lru:
            self.hits += 1
            lru.move_to_end(key)
            lru[key] = True
            return
        self.misses += 1
        while self.occupied + self.fill_bits > self.capacity_bits and lru:
            _, old_dirty = lru.popitem(last=False)
            self.occupied -= self.fill_bits
            if old_dirty:
                self.writebacks += 1
        lru[key] = True
        self.occupied += self.fill_bits

    def write_seq(self, of: str, path: tuple, rank: str, coords,
                  cx: tuple) -> None:
        """One :meth:`write` per coordinate (the cache ignores loop
        context, so only the count and ordering matter — both identical
        to the scalar leaf's per-element writes)."""
        write = self.write
        for c in coords:
            write(of, path, cx)

    def finish(self) -> None:
        for dirty in self.lru.values():
            if dirty:
                self.writebacks += 1
        self.lru.clear()
        self.occupied = 0.0

    def tallies(self) -> dict:
        return {
            # Every touch either hits or misses, so reads fall out.
            "reads": self.hits + self.misses - self.writes,
            "writes": self.writes,
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "fill_reads": self.fill_reads,
        }


def make_touch(read, of: str, base: tuple, cx: tuple):
    """Per-coordinate touch callback for the fused k-way co-iterators.

    ``read`` is a bound ``FusedBuffet.read`` / ``FusedCache.read``.
    """
    def touch(c, _read=read, _of=of, _base=base, _cx=cx):
        _read(_of, _base + (c,), _cx)
    return touch


def reduce_into(root: Fiber, point: tuple, value: Any, opset,
                overwrite: bool) -> int:
    """Insert ``value`` at ``point``, reducing with ``opset.add`` on
    collision (or overwriting, for take() Einsums).  Returns the number
    of reduction adds performed (0 or 1) so traced kernels can count
    them exactly like the interpreter."""
    node = root
    for coord in point[:-1]:
        node = node.get_payload_ref(coord, make=Fiber)
    leaf = point[-1] if point else 0
    existing = node.get_payload(leaf)
    if existing is None or overwrite:
        node.set_payload(leaf, value)
        return 0
    node.set_payload(leaf, opset.add(existing, value))
    return 1


def out_ref(root: Fiber, prefix: tuple) -> Fiber:
    """The output subtree fiber at ``prefix``, created on demand.

    The flat kernels memoize this across consecutive leaves (the output
    point's prefix usually only changes when an outer loop advances), so
    reductions skip the per-leaf descent :func:`reduce_into` pays.
    """
    node = root
    for coord in prefix:
        node = node.get_payload_ref(coord, make=Fiber)
    return node


def reduce_leaf(node: Fiber, leaf, value: Any, opset,
                overwrite: bool) -> int:
    """The leaf half of :func:`reduce_into` against a memoized subtree."""
    existing = node.get_payload(leaf)
    if existing is None or overwrite:
        node.set_payload(leaf, value)
        return 0
    node.set_payload(leaf, opset.add(existing, value))
    return 1
