"""Build loop-nest IR from a mapped Einsum (paper Figure 6, left half).

The builder combines one Einsum of the cascade with its mapping to produce a
:class:`~repro.ir.nodes.LoopNestIR`:

* it applies partitioning directives to the iteration space to derive the
  loop ranks and which index variables each rank binds;
* per tensor access, it derives the preprocessing steps — flattening (with
  adjacency swizzles), shape splits (eager for every tensor holding the
  rank), occupancy splits (eager for the leader, runtime window-following
  for the others) and the final *inferred concordant swizzle* (paper
  section 3.2.2);
* it computes each rank's co-iteration mode (intersect/union/single) from
  the expression tree;
* it records the output assembly plan, including whether the producer-side
  build order differs from the storage rank order (an inferred swizzle on
  the intermediate tensor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..einsum.ast import Access, Add, Einsum, Expr, IndexExpr, Mul, Take, accesses
from ..fibertree.rankid import flatten_name, rank_of_var, split_names
from ..spec.errors import SpecError
from ..spec.loader import AcceleratorSpec
from .nodes import (
    FLAT,
    FLAT_UPPER,
    PLAIN,
    UPPER,
    VIRTUAL,
    AccessPlan,
    Level,
    LoopNestIR,
    OutputPlan,
    PrepStep,
)


class BuildError(SpecError):
    def __init__(self, message: str):
        super().__init__("build", message)


# ----------------------------------------------------------------------
# Iteration-space derivation
# ----------------------------------------------------------------------
@dataclass
class _SpaceInfo:
    loop_ranks: List[str]
    binds: Dict[str, Tuple[str, ...]]
    origin: Dict[str, Optional[str]]
    var_rank: Dict[str, str]  # index var -> loop rank binding it


def _derive_iteration_space(einsum, mapping, params) -> _SpaceInfo:
    base = [rank_of_var(v) for v in einsum.all_vars]
    ranks = list(base)
    binds: Dict[str, Tuple[str, ...]] = {r: (r.lower(),) for r in base}
    origin: Dict[str, Optional[str]] = {r: r for r in base}

    for key, directives in mapping.partitioning:
        flattens = [d for d in directives if d.kind == "flatten"]
        splits = [d for d in directives if d.kind != "flatten"]
        target = key[0]
        if flattens:
            if any(k not in ranks for k in key):
                raise BuildError(
                    f"flatten key {key} not in iteration ranks {ranks}"
                )
            target = flatten_name(key)
            pos = min(ranks.index(k) for k in key)
            combined = tuple(v for k in key for v in binds[k])
            for k in key:
                ranks.remove(k)
            ranks.insert(pos, target)
            binds[target] = combined
            origin[target] = target
        if splits:
            if target not in ranks:
                raise BuildError(f"split target {target} not in ranks {ranks}")
            names = split_names(target, len(splits))
            pos = ranks.index(target)
            ranks[pos : pos + 1] = names
            lower = names[-1]
            binds[lower] = binds[target]
            origin[lower] = origin.get(target, target)
            for upper in names[:-1]:
                binds[upper] = ()
                origin[upper] = origin.get(target, target)

    loop_ranks = list(mapping.loop_order) if mapping.loop_order else ranks
    if sorted(loop_ranks) != sorted(ranks):
        raise BuildError(
            f"loop-order {loop_ranks} does not cover the partitioned "
            f"iteration ranks {sorted(ranks)}"
        )
    var_rank = {}
    for rank in loop_ranks:
        for v in binds.get(rank, ()):
            var_rank[v] = rank
    return _SpaceInfo(loop_ranks, {r: binds.get(r, ()) for r in loop_ranks},
                      origin, var_rank)


# ----------------------------------------------------------------------
# Expression analysis
# ----------------------------------------------------------------------
def _conjunctive_flags(expr: Expr) -> List[bool]:
    """For each access (in `accesses` order): does its absence kill the point?"""
    flags: List[bool] = []

    def walk(node: Expr, conj: bool) -> None:
        if isinstance(node, Access):
            flags.append(conj)
        elif isinstance(node, (Mul,)):
            for f in node.factors:
                walk(f, conj)
        elif isinstance(node, Take):
            for a in node.args:
                flags.append(conj)
        elif isinstance(node, Add):
            walk(node.left, False)
            walk(node.right, False)
        else:
            raise TypeError(f"unknown expression node {node!r}")

    walk(expr, True)
    return flags


def _rank_mode(expr: Expr, rank_vars: Sequence[str]) -> str:
    """Co-iteration mode at a rank: 'intersect', 'union' or 'single'."""
    vars_set = set(rank_vars)

    def walk(node: Expr) -> Tuple[bool, Optional[str]]:
        if isinstance(node, Access):
            uses = bool(vars_set & set(node.index_vars))
            return uses, ("single" if uses else None)
        if isinstance(node, (Mul, Take)):
            children = node.factors if isinstance(node, Mul) else node.args
            results = [walk(c) for c in children]
            users = [m for uses, m in results if uses]
            if len(users) >= 2:
                return True, "intersect"
            if len(users) == 1:
                return True, users[0]
            return False, None
        if isinstance(node, Add):
            lu, lm = walk(node.left)
            ru, rm = walk(node.right)
            if lu and ru:
                return True, "union"
            if lu:
                return True, lm
            if ru:
                return True, rm
            return False, None
        raise TypeError(f"unknown expression node {node!r}")

    _, mode = walk(expr)
    return mode or "single"


# ----------------------------------------------------------------------
# Per-access planning
# ----------------------------------------------------------------------
@dataclass
class _LevelBuild:
    """Mutable level under construction: loop-rank name + tensor-side name."""

    name: str  # transformed rank name (aligned with loop ranks)
    tname: str  # rank name on the actual Tensor object after prep
    kind: str = PLAIN
    exprs: Tuple[IndexExpr, ...] = ()
    of: Optional[str] = None


def _level_rank(exprs: Tuple[IndexExpr, ...], space: _SpaceInfo,
                fallback: str) -> str:
    """Loop rank at which a level with these exprs can participate: the
    latest-bound variable's rank."""
    positions = []
    for e in exprs:
        for v in e.vars:
            rank = space.var_rank.get(v)
            if rank is not None:
                positions.append(space.loop_ranks.index(rank))
    if not positions:
        return fallback
    return space.loop_ranks[max(positions)]


def _plan_access(
    access: Access,
    spec: AcceleratorSpec,
    mapping,
    space: _SpaceInfo,
    conjunctive: bool,
    intermediates: set,
) -> AccessPlan:
    decl = spec.einsum.ranks_of(access.tensor)
    if access.indices is None:
        exprs = [IndexExpr.var(r.lower()) for r in decl]
    else:
        exprs = list(access.indices)
    for e in exprs:
        if len(set(e.vars)) != len(e.vars):
            raise BuildError(
                f"access {access}: index expression {e} repeats a variable; "
                "affine indices must use distinct variables"
            )
    expr_of = dict(zip(decl, exprs))
    order = mapping.rank_order_of(access.tensor, decl)

    levels = [
        _LevelBuild(name=r, tname=r, kind=PLAIN, exprs=(expr_of[r],), of=r)
        for r in order
    ]
    prep: List[PrepStep] = []

    def names() -> List[str]:
        return [l.name for l in levels]

    for key, directives in mapping.partitioning:
        flattens = [d for d in directives if d.kind == "flatten"]
        splits = [d for d in directives if d.kind != "flatten"]
        target = key[0]
        if flattens:
            target = flatten_name(key)
            if all(k in names() for k in key):
                _apply_flatten(levels, prep, key)
        if not splits or target not in names():
            continue
        sizes = tuple(d.resolve_size(spec.params) for d in splits)
        occupancy = splits[0].kind == "uniform_occupancy"
        leader = splits[0].leader if occupancy else None
        if occupancy and any(
            d.leader != leader or d.kind != "uniform_occupancy" for d in splits
        ):
            raise BuildError(
                f"mixed split directives on {target}: {list(map(str, splits))}"
            )
        if occupancy and access.tensor != leader:
            _apply_follower_split(levels, target, len(splits))
        else:
            _apply_eager_split(levels, prep, target, sizes, occupancy)

    # Levels untouched by partitioning take the loop rank at which they can
    # participate (the rank binding their latest-bound variable): a level
    # accessed purely by lookup is scheduled at the rank that binds it.
    # Levels indexed by pure literals (the FFT cascade's P[0, k0, n1, 0])
    # bind to no loop rank at all; they advance by lookup and keep their
    # position relative to the preceding variable level.
    loop_pos = {r: i for i, r in enumerate(space.loop_ranks)}
    literal = set()
    for l in levels:
        if l.name in loop_pos:
            continue
        if l.exprs and all(e.is_literal for e in l.exprs):
            literal.add(id(l))
            continue
        l.name = _level_rank(l.exprs, space, fallback=l.name)

    unknown = [l.name for l in levels
               if l.name not in loop_pos and id(l) not in literal]
    if unknown:
        raise BuildError(
            f"access {access} has levels {unknown} outside the loop ranks "
            f"{space.loop_ranks}"
        )

    # Inferred concordant swizzle (paper section 3.2.2): order the physical
    # levels to match the loop order; literal levels inherit the sort key
    # of the preceding variable level (stable sort keeps them in place).
    keys = []
    prev_key = -1
    for l in levels:
        if id(l) in literal:
            keys.append(prev_key)
        else:
            prev_key = loop_pos[l.name]
            keys.append(prev_key)
    wanted = [l for _, l in sorted(zip(keys, levels), key=lambda p: p[0])]
    if [l.name for l in wanted if l.kind != VIRTUAL] != [
        l.name for l in levels if l.kind != VIRTUAL
    ]:
        prep.append(
            PrepStep(
                "swizzle",
                ranks=tuple(l.tname for l in wanted if l.kind != VIRTUAL),
            )
        )
    levels = wanted

    return AccessPlan(
        access=access,
        levels=[
            Level(rank=l.name, kind=l.kind, exprs=l.exprs, of=l.of) for l in levels
        ],
        prep=prep,
        conjunctive=conjunctive,
        is_intermediate=access.tensor in intermediates,
    )


def _apply_flatten(levels: List[_LevelBuild], prep: List[PrepStep],
                   key: Tuple[str, ...]) -> None:
    key_levels = {l.name: l for l in levels if l.name in key}
    if any(l.kind not in (PLAIN, FLAT) for l in key_levels.values()):
        raise BuildError(f"cannot flatten split ranks {key}")
    # Adjacency swizzle: bring key ranks together, in key order, at the
    # position of the earliest one.
    current = [l.name for l in levels]
    wanted: List[str] = []
    inserted = False
    for n in current:
        if n in key:
            if not inserted:
                wanted.extend(key)
                inserted = True
            continue
        wanted.append(n)
    if wanted != current:
        order = [key_levels[n] if n in key_levels else
                 next(l for l in levels if l.name == n) for n in wanted]
        prep.append(PrepStep("swizzle", ranks=tuple(l.tname for l in order)))
        levels[:] = order
    # Merge the key levels into one FLAT level.
    first = levels.index(key_levels[key[0]])
    merged_exprs = tuple(
        e for k in key for e in key_levels[k].exprs
    )
    name = flatten_name(key)
    flat = _LevelBuild(name=name, tname=name, kind=FLAT, exprs=merged_exprs,
                       of=name)
    prep.append(PrepStep("flatten", ranks=tuple(key_levels[k].tname for k in key)))
    levels[first : first + len(key)] = [flat]


def _apply_eager_split(levels, prep, target, sizes, occupancy) -> None:
    idx = next(i for i, l in enumerate(levels) if l.name == target)
    base = levels[idx]
    kind = "partition_occupancy" if occupancy else "partition_shape"
    prep.append(PrepStep(kind, rank=base.tname, sizes=sizes))
    new_names = split_names(target, len(sizes))
    tensor_names = split_names(base.tname, len(sizes))
    upper_kind = FLAT_UPPER if base.kind == FLAT else UPPER
    uppers = [
        _LevelBuild(name=n, tname=tn, kind=upper_kind, of=base.of)
        for n, tn in zip(new_names[:-1], tensor_names[:-1])
    ]
    lower = _LevelBuild(
        name=new_names[-1],
        tname=tensor_names[-1],
        kind=base.kind,
        exprs=base.exprs,
        of=base.of,
    )
    levels[idx : idx + 1] = uppers + [lower]


def _apply_follower_split(levels, target, num_splits) -> None:
    idx = next(i for i, l in enumerate(levels) if l.name == target)
    base = levels[idx]
    if base.kind != PLAIN or len(base.exprs) != 1 or not base.exprs[0].is_var:
        raise BuildError(
            f"follower split of {target} requires a plain single-variable "
            "level"
        )
    new_names = split_names(target, num_splits)
    uppers = [
        _LevelBuild(name=n, tname=base.tname, kind=VIRTUAL, of=base.of)
        for n in new_names[:-1]
    ]
    lower = _LevelBuild(
        name=new_names[-1],
        tname=base.tname,
        kind=PLAIN,
        exprs=base.exprs,
        of=base.of,
    )
    levels[idx : idx + 1] = uppers + [lower]


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def build_ir(spec: AcceleratorSpec, einsum_name: str) -> LoopNestIR:
    """Lower one mapped Einsum of a spec into loop-nest IR."""
    einsum = spec.einsum.cascade[einsum_name]
    mapping = spec.mapping.for_einsum(einsum_name)
    space = _derive_iteration_space(einsum, mapping, spec.params)

    flags = _conjunctive_flags(einsum.expr)
    intermediates = set(spec.einsum.cascade.intermediates)
    plans = [
        _plan_access(acc, spec, mapping_proxy(spec, mapping), space, conj,
                     intermediates)
        for acc, conj in zip(accesses(einsum.expr), flags)
    ]

    modes = {
        rank: _rank_mode(einsum.expr, space.binds[rank])
        for rank in space.loop_ranks
    }

    # Output plan -------------------------------------------------------
    out_decl = spec.einsum.ranks_of(einsum.output.tensor)
    if einsum.output.indices is None:
        out_exprs = [IndexExpr.var(r.lower()) for r in out_decl]
    else:
        out_exprs = list(einsum.output.indices)
    out_expr_of = dict(zip(out_decl, out_exprs))
    storage = spec.mapping.rank_order_of(einsum.output.tensor, out_decl)
    storage_exprs = tuple(out_expr_of[r] for r in storage)

    # Order in which loop execution binds the output's variables.
    out_vars = [v for e in out_exprs for v in e.vars]
    build_vars: List[str] = []
    for rank in space.loop_ranks:
        for v in space.binds[rank]:
            if v in out_vars and v not in build_vars:
                build_vars.append(v)
    storage_vars = [v for e in storage_exprs for v in e.vars]
    output = OutputPlan(
        tensor=einsum.output.tensor,
        indices=storage_exprs,
        storage_ranks=list(storage),
        build_ranks=build_vars,
        needs_producer_swizzle=(build_vars != storage_vars),
    )

    # Rank shapes from explicit spec shapes (by origin rank name).
    rank_shapes: Dict[str, Optional[int]] = {}
    for rank in space.loop_ranks:
        origin = space.origin.get(rank)
        rank_shapes[rank] = spec.einsum.shapes.get(origin or rank)

    st = mapping
    time_styles = {t.rank: t.style for t in st.time}
    return LoopNestIR(
        einsum=einsum,
        loop_ranks=space.loop_ranks,
        binds=space.binds,
        accesses=plans,
        output=output,
        modes=modes,
        space_ranks=list(st.space_ranks),
        time_ranks=list(st.time_ranks) if st.time_ranks else list(space.loop_ranks),
        time_styles=time_styles,
        rank_shapes=rank_shapes,
        origin={r: (space.origin.get(r) or r) for r in space.loop_ranks},
    )


class mapping_proxy:
    """Adapter giving _plan_access the partitioning plus rank-order lookup."""

    def __init__(self, spec: AcceleratorSpec, einsum_mapping):
        self._spec = spec
        self.partitioning = einsum_mapping.partitioning

    def rank_order_of(self, tensor: str, declared) -> List[str]:
        return self._spec.mapping.rank_order_of(tensor, declared)


def build_cascade_ir(spec: AcceleratorSpec) -> List[LoopNestIR]:
    """Lower every Einsum of a spec, in cascade order."""
    return [build_ir(spec, e.name) for e in spec.einsum.cascade]
