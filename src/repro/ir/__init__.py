"""Loop-nest IR: nodes, builder, and pretty-printer."""

from .builder import BuildError, build_cascade_ir, build_ir
from .nodes import (
    FLAT,
    FLAT_UPPER,
    PLAIN,
    UPPER,
    VIRTUAL,
    AccessPlan,
    Level,
    LoopNestIR,
    OutputPlan,
    PrepStep,
)

__all__ = [
    "AccessPlan",
    "BuildError",
    "FLAT",
    "FLAT_UPPER",
    "Level",
    "LoopNestIR",
    "OutputPlan",
    "PLAIN",
    "PrepStep",
    "UPPER",
    "VIRTUAL",
    "build_cascade_ir",
    "build_ir",
]
