"""Render loop-nest IR as readable pseudo-code.

TeAAL lowers specifications to an executable loop nest; this module prints
that loop nest the way the paper's Figure 6 describes it — useful for
understanding what a mapping does and for documentation/examples.
"""

from __future__ import annotations

from typing import List

from .nodes import FLAT, FLAT_UPPER, UPPER, VIRTUAL, LoopNestIR


def format_ir(ir: LoopNestIR) -> str:
    """Multi-line pseudo-code for one lowered Einsum."""
    lines: List[str] = [f"# Einsum: {ir.einsum}"]
    for plan in ir.accesses:
        order = " -> ".join(
            f"{l.rank}{'*' if l.kind == VIRTUAL else ''}" for l in plan.levels
        )
        lines.append(f"# {plan.tensor}: levels {order}")
        for step in plan.prep:
            lines.append(f"#   prep: {step.describe()}")
    if ir.output.needs_producer_swizzle:
        lines.append(
            f"#   note: {ir.output.tensor} is built discordantly and "
            f"swizzled to {ir.output.storage_ranks} for storage"
        )
    indent = 0
    for rank in ir.loop_ranks:
        binds = ir.binds.get(rank, ())
        mode = ir.modes.get(rank, "single")
        drivers = [
            p.tensor
            for p in ir.accesses
            for l in p.levels
            if l.rank == rank and l.kind != VIRTUAL
        ]
        where = (
            "space" if rank in ir.space_ranks
            else "time" if rank in ir.time_ranks else "-"
        )
        bind_text = ", ".join(binds) if binds else "-"
        body = f"for {rank} ({bind_text}) in {mode}({', '.join(drivers) or 'range'})"
        lines.append("    " * indent + body + f":  # {where}")
        indent += 1
    target = ir.output.tensor
    subscript = ", ".join(str(e) for e in ir.output.indices)
    lines.append("    " * indent + f"{target}[{subscript}] += {ir.einsum.expr}")
    return "\n".join(lines)


def format_cascade(irs: List[LoopNestIR]) -> str:
    """Pseudo-code for a whole cascade, one block per Einsum."""
    return "\n\n".join(format_ir(ir) for ir in irs)
