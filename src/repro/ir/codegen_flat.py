"""Flat code generation: loop nests over arena spans instead of fibers.

:mod:`repro.ir.codegen` lowers an Einsum to kernels that walk boxed
:class:`~repro.fibertree.fiber.Fiber` objects.  This module lowers the
*same* IR to kernels that operate natively on
:class:`~repro.fibertree.arena.FlatArena` buffers: every cursor is a
half-open position span ``[lo, hi)`` into one level's flat coordinate
array, iteration is ``for p in range(lo, hi)``, descent is two segment
loads, and two-way intersection is an inlined galloping merge on the raw
coordinate buffers — no generators, no per-element payload lists, no
``Fiber`` allocation for windows, slices, or projections.

Three flavors share one generator:

* **flat** ``kernel(arenas, opset, shapes)`` — the untraced fast path;
* **counted** ``kernel(arenas, opset, shapes, kc)`` — counter fusion:
  instead of one :class:`~repro.model.traces.TraceSink` method call per
  touched element, the kernel bumps local integer tallies (per
  (tensor, rank, kind) reads/writes, per-rank intersection statistics,
  per-op compute counts with their spacetime stamp sets) and flushes them
  into a :class:`~repro.model.traces.KernelCounters` once at the end.
  The tallies equal, exactly, the aggregates of the traced event stream —
  including the subtle cases: lookup misses still count a coordinate
  read, abandoned co-iterations (existential ``take()`` short-circuits)
  keep their partial visit counts but drop the final ``isect`` event,
  and ineffectual leaves price nothing.
* **fused** ``kernel(arenas, opset, shapes, kc, fm)`` — model fusion:
  everything the counted flavor does, plus the buffet/cache component
  state machines inlined into the loops.  The kernel tracks coordinate
  paths (``h`` vars) and loop-context prefixes (``cx`` vars) exactly as
  the traced object kernels do, and at every touch site consults a
  *port* bound once at entry from ``fm`` (a
  :class:`repro.model.evaluate.FusedMachines` routing plan built from
  the binding spec at run time — the generated code itself stays
  binding-independent, so fused kernels share the same compile-cache
  entry across binding variations).  A ``None`` port means the touch
  falls through to DRAM and bumps the fused counter; a live port is a
  :class:`~repro.ir.codegen_runtime.FusedBuffet` /
  :class:`~repro.ir.codegen_runtime.FusedCache` state machine receiving
  the same (key, evict-window) sequence the traced
  :class:`~repro.model.evaluate.ModelSink` would deliver.

The walk order, the guard structure, and every membership decision are
copied from :class:`repro.ir.codegen._Generator` so the differential
suite can hold all engines (interpreter, object kernels, flat kernels,
fused kernels) to identical outputs and metrics.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..einsum.ast import Access, Add, Expr, Mul, Take
from .nodes import FLAT_UPPER, PLAIN, UPPER, VIRTUAL, LoopNestIR
from .codegen import (
    CodegenError,
    _coord_code,
    _drivable,
    _Emitter,
    _existential_ranks,
    _expr_code,
    _physical_below,
    _point_code,
    _statically_driven,
)


class _FlatGenerator:
    """Emits one arena-native kernel (flat, counted, fused, or vector)
    for one Einsum."""

    def __init__(self, ir: LoopNestIR, func_name: str, counted: bool,
                 fused: bool = False, vector: bool = False):
        self.ir = ir
        self.func_name = func_name
        self.vector = vector
        fused = fused or vector
        self.counted = counted or fused
        self.fused = fused
        counted = self.counted
        self.em = _Emitter()  # body emitter (swapped in during generate)
        self.existential = _existential_ranks(ir)
        self.stamp_ranks = (set(ir.time_ranks) | set(ir.space_ranks)) \
            if counted else set()
        self.n_ranks = len(ir.loop_ranks)
        self._tmp_count = 0
        # Arena geometry per access: number of physical levels, and the
        # arena level each plan depth sits on (virtual levels add no
        # arena level).
        self.n_phys: List[int] = []
        self.level_at: List[List[int]] = []
        for plan in ir.accesses:
            at = [0]
            for lvl in plan.levels:
                at.append(at[-1] + (1 if lvl.is_physical else 0))
            self.level_at.append(at)
            self.n_phys.append(at[-1])
        # Counter bookkeeping (counted/fused flavors only).
        self.read_ctrs: Dict[Tuple[str, str, str], str] = {}
        self.write_ctrs: Dict[Tuple[str, str, str], str] = {}
        self.isect_ranks: List[str] = []
        # Component-machine ports (fused flavor): one per touched
        # (tensor, rank, kind) triple, bound from ``fm`` at kernel entry.
        self.ports: Dict[Tuple[str, str, str], str] = {}
        # Pair dispatchers: the bound ``read2`` of a machine that claims
        # both the coord and the payload port of one (tensor, rank) —
        # the back-to-back event pair every present element emits.
        self.pairs: Dict[Tuple[str, str], str] = {}
        # Numpy leaf buffers the vector branches consume (populated
        # during body generation; the head binds them afterwards).
        self.vec_coords: Set[Tuple[int, int]] = set()
        self.vec_vals: Set[int] = set()

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------
    def _al(self, i: int, d: int) -> int:
        """Arena level of access ``i``'s cursor at plan depth ``d``."""
        return self.level_at[i][d]

    def _is_scalar(self, i: int, d: int) -> bool:
        return self._al(i, d) == self.n_phys[i]

    def _cur_none_check(self, i: int, d: int) -> str:
        if self._is_scalar(i, d):
            return f"n{i}_{d}"
        return f"n{i}_{d}a"

    def _absent(self, i: int, d: int) -> None:
        """Set access ``i``'s cursor at depth ``d`` to absent."""
        if self._is_scalar(i, d):
            self.em.emit(f"n{i}_{d} = None")
        else:
            self.em.emit(f"n{i}_{d}a = None")
            self.em.emit(f"n{i}_{d}b = None")
        if self.fused:
            # Keep the path var defined along absent branches; no event
            # below an absent cursor ever reads it, so the value is moot.
            self.em.emit(f"h{i}_{d} = ()")

    def _descend(self, i: int, d: int, pos: str) -> None:
        """Descend access ``i`` from depth ``d`` via element position ``pos``."""
        child = self._al(i, d) + 1
        if child == self.n_phys[i]:
            self.em.emit(f"n{i}_{d + 1} = t{i}_v[{pos}]")
        else:
            self.em.emit(f"n{i}_{d + 1}a = t{i}_s{child}[{pos}]")
            self.em.emit(f"n{i}_{d + 1}b = t{i}_s{child}[{pos} + 1]")

    def _copy(self, i: int, d: int) -> None:
        """Copy the cursor past a virtual level (depth d -> d+1)."""
        if self._is_scalar(i, d):
            self.em.emit(f"n{i}_{d + 1} = n{i}_{d}")
        else:
            self.em.emit(f"n{i}_{d + 1}a = n{i}_{d}a")
            self.em.emit(f"n{i}_{d + 1}b = n{i}_{d}b")
        if self.fused:
            self.em.emit(f"h{i}_{d + 1} = h{i}_{d}")

    # ------------------------------------------------------------------
    # Counter/port helpers (counted+fused flavors; no-ops for flat)
    # ------------------------------------------------------------------
    def _rctr(self, tensor: str, of: str, kind: str) -> str:
        key = (tensor, of, kind)
        var = self.read_ctrs.get(key)
        if var is None:
            var = f"cr{len(self.read_ctrs)}"
            self.read_ctrs[key] = var
        return var

    def _wctr(self, tensor: str, of: str, kind: str) -> str:
        key = (tensor, of, kind)
        var = self.write_ctrs.get(key)
        if var is None:
            var = f"cw{len(self.write_ctrs)}"
            self.write_ctrs[key] = var
        return var

    def _port(self, tensor: str, of: str, kind: str) -> str:
        key = (tensor, of, kind)
        var = self.ports.get(key)
        if var is None:
            var = f"mp{len(self.ports)}"
            self.ports[key] = var
        return var

    def _pair(self, tensor: str, of: str) -> str:
        key = (tensor, of)
        var = self.pairs.get(key)
        if var is None:
            self._port(tensor, of, "coord")
            self._port(tensor, of, "payload")
            var = f"pp{len(self.pairs)}"
            self.pairs[key] = var
        return var

    def _deferrable(self, i: int) -> bool:
        """Can access ``i``'s driver coord read defer to the payload site?

        Safe when no other access shares the tensor: with one access,
        nothing can slip between the coord and payload events of one
        element on their shared machine, so dispatching the pair together
        preserves the machine's exact event order.  (Lookup sites are
        straight-line and always safe — they don't consult this.)
        """
        tensor = self.ir.accesses[i].tensor
        return sum(1 for p in self.ir.accesses if p.tensor == tensor) == 1

    def _emit_pair_read(self, i: int, of: str, key: str, cx: str) -> None:
        """The coord+payload event pair of one present element.

        One ``read2`` call when a single machine claims both ports, the
        exact two-dispatch sequence otherwise.  The coord *counter* case
        is handled at the original coord site (counters are
        order-insensitive), so here a ``None`` coord port means no-op.
        """
        em = self.em
        tensor = self.ir.accesses[i].tensor
        pc = self._port(tensor, of, "coord")
        pp = self._port(tensor, of, "payload")
        pair = self._pair(tensor, of)
        pctr = self._rctr(tensor, of, "payload")
        em.emit(f"if {pair} is not None:")
        em.indent += 1
        em.emit(f"{pair}({of!r}, {key}, {cx})")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit(f"if {pc}r is not None:")
        em.indent += 1
        em.emit(f"{pc}r({of!r}, {key}, {cx})")
        em.indent -= 1
        em.emit(f"if {pp}r is None:")
        em.indent += 1
        em.emit(f"{pctr} += 1")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit(f"{pp}r({of!r}, {key}, {cx})")
        em.indent -= 2

    def _emit_coord_counter(self, i: int, of: str) -> None:
        """The counter half of a deferred coord read: bump only when the
        event routes to DRAM (machine dispatch happens at the pair
        site; counters are order-insensitive, so bumping here is
        exact)."""
        em = self.em
        tensor = self.ir.accesses[i].tensor
        port = self._port(tensor, of, "coord")
        em.emit(f"if {port}r is None:")
        em.indent += 1
        em.emit(f"{self._rctr(tensor, of, 'coord')} += 1")
        em.indent -= 1

    def _bump_read(self, i: int, of: str, kind: str, amount: str = "1") -> None:
        """Tally one (or ``amount``) DRAM-routed read events.

        Only used where the fused flavor routes the site separately (or
        not at all); sites a component machine may claim go through
        :meth:`_emit_read` instead.
        """
        if self.counted:
            tensor = self.ir.accesses[i].tensor
            self.em.emit(f"{self._rctr(tensor, of, kind)} += {amount}")

    def _emit_read(self, i: int, of: str, kind: str, key: str = None,
                   cx: str = None) -> None:
        """One read event: counter bump, or machine dispatch when fused.

        ``key`` is the Python expression of the event's coordinate path
        (the traced kernel's ``h`` + coord), ``cx`` the loop-context
        prefix var; both are only evaluated on the machine branch.
        """
        if not self.counted:
            return
        em = self.em
        tensor = self.ir.accesses[i].tensor
        ctr = self._rctr(tensor, of, kind)
        if not self.fused:
            em.emit(f"{ctr} += 1")
            return
        port = self._port(tensor, of, kind)
        em.emit(f"if {port}r is None:")
        em.indent += 1
        em.emit(f"{ctr} += 1")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit(f"{port}r({of!r}, {key}, {cx})")
        em.indent -= 1

    # ------------------------------------------------------------------
    def generate(self) -> str:
        ir = self.ir
        preps: Dict[str, tuple] = {}
        for plan in ir.accesses:
            prep = tuple(plan.prep)
            if preps.setdefault(plan.tensor, prep) != prep:
                raise CodegenError(
                    f"tensor {plan.tensor} is accessed twice with different "
                    "preprocessing; use the interpreter"
                )
        for i, n in enumerate(self.n_phys):
            if n == 0:
                raise CodegenError(
                    f"access {ir.accesses[i].tensor} has no physical levels; "
                    "flat kernels need at least one"
                )

        body = _Emitter()
        body.indent = 1
        self.em = body
        depths = {i: 0 for i in range(len(ir.accesses))}
        self._lookups(level=-1, depths=depths)
        self._rank(0, depths, wins={}, guarded=set())

        head = _Emitter()
        if self.fused:
            args = "arenas, opset, shapes, kc, fm"
        elif self.counted:
            args = "arenas, opset, shapes, kc"
        else:
            args = "arenas, opset, shapes"
        head.emit(f"def {self.func_name}({args}):")
        head.indent += 1
        flavor = "vector" if self.vector else (
            "fused" if self.fused else (
                "counted" if self.counted else "flat"))
        head.emit(f'"""Generated ({flavor}, arena-native) from: {ir.einsum}"""')
        for i, plan in enumerate(ir.accesses):
            n = self.n_phys[i]
            head.emit(f"_a{i} = arenas[{plan.tensor!r}]")
            # Scalar loops bind the memoized Python-list views: CPython
            # indexes lists faster than any array type, and list items
            # are exactly the Python ints/floats the traced path sees.
            head.emit(f"_ac{i}, _as{i}, _av{i} = _a{i}.scalar_buffers()")
            for L in range(n):
                head.emit(f"t{i}_c{L} = _ac{i}[{L}]")
            for L in range(1, n):
                head.emit(f"t{i}_s{L} = _as{i}[{L}]")
                head.emit(f"t{i}_r{L} = _a{i}.ranges[{L}]")
            head.emit(f"t{i}_v = _av{i}")
            # Vector leaves read the numpy buffers directly (None when a
            # level fell back to list storage — the generated guard then
            # keeps that leaf on the scalar path).
            for (j, L) in sorted(self.vec_coords):
                if j == i:
                    head.emit(f"t{i}_cn{L} = _a{i}.np_coords({L})")
            if i in self.vec_vals:
                head.emit(f"t{i}_vn = _a{i}.np_vals()")
            head.emit(f"n{i}_0a = 0")
            head.emit(f"n{i}_0b = len(t{i}_c0)")
            if self.fused:
                head.emit(f"h{i}_0 = ()")
        if self.vector:
            head.emit("_vk = rt.vec_ok(opset)")
        head.emit("out = Fiber()")
        head.emit("_on = out")
        head.emit("_op = None")
        if self.fused:
            head.emit("cx0 = ()")
            for (tensor, of, kind), var in self.ports.items():
                head.emit(f"{var} = fm.port({tensor!r}, {of!r}, {kind!r})")
                head.emit(f"{var}r = None if {var} is None else {var}.read")
                head.emit(f"{var}w = None if {var} is None else {var}.write")
            for (tensor, of), var in self.pairs.items():
                pc = self.ports[(tensor, of, "coord")]
                pp = self.ports[(tensor, of, "payload")]
                head.emit(
                    f"{var} = {pc}.read2 if ({pc} is not None and "
                    f"{pc} is {pp}) else None"
                )
        if self.counted:
            for var in self.read_ctrs.values():
                head.emit(f"{var} = 0")
            for var in self.write_ctrs.values():
                head.emit(f"{var} = 0")
            for rank in self.isect_ranks:
                head.emit(f"iv_{rank} = 0")
                head.emit(f"im_{rank} = 0")
            for op in ("mul", "add", "copy"):
                head.emit(f"cn_{op} = 0")
                head.emit(f"cs_{op} = set()")
                head.emit(f"cl_{op} = set()")
            for rank in sorted(self.stamp_ranks):
                head.emit(f"st_{rank} = 0")
        if self.existential:
            head.emit("wr_0 = False")

        tail = _Emitter()
        tail.indent = 1
        if self.counted:
            for (tensor, of, kind), var in self.read_ctrs.items():
                tail.emit(
                    f"kc.add_read({tensor!r}, {of!r}, {kind!r}, {var})"
                )
            for (tensor, of, kind), var in self.write_ctrs.items():
                tail.emit(
                    f"kc.add_write({tensor!r}, {of!r}, {kind!r}, {var})"
                )
            for rank in self.isect_ranks:
                tail.emit(f"kc.add_isect({rank!r}, iv_{rank}, im_{rank})")
            for op in ("mul", "add", "copy"):
                tail.emit(f"kc.add_compute({op!r}, cn_{op}, cs_{op}, cl_{op})")
        tail.emit(
            "return Tensor("
            f"{ir.output.tensor!r}, {ir.output.storage_ranks!r}, out, "
            f"[shapes.get(r) for r in {ir.output.storage_ranks!r}])"
        )
        return "\n".join(head.lines + body.lines + tail.lines) + "\n"

    # ------------------------------------------------------------------
    def _dead_guard(self, depths: Dict[int, int], guarded: Set[str]) -> int:
        names = []
        for i, plan in enumerate(self.ir.accesses):
            if plan.conjunctive and depths[i] > 0:
                name = self._cur_none_check(i, depths[i])
                if name not in guarded:
                    names.append(name)
                    guarded.add(name)
        if not names:
            return 0
        cond = " or ".join(f"{n} is None" for n in names)
        self.em.emit(f"if not ({cond}):")
        self.em.indent += 1
        return 1

    # ------------------------------------------------------------------
    def _rank(self, level: int, depths: Dict[int, int],
              wins: Dict[str, str], guarded: Set[str]) -> None:
        ir, em = self.ir, self.em
        if level == self.n_ranks:
            self._leaf(depths)
            return
        rank = ir.loop_ranks[level]
        binds = ir.binds.get(rank, ())

        guarded = set(guarded)
        close = self._dead_guard(depths, guarded)

        drivers: List[Tuple[int, object]] = []
        virtual: List[int] = []
        for i, plan in enumerate(ir.accesses):
            d = depths[i]
            if d < len(plan.levels) and plan.levels[d].rank == rank:
                lvl = plan.levels[d]
                if lvl.kind == VIRTUAL:
                    virtual.append(i)
                elif _drivable(lvl, binds):
                    drivers.append((i, lvl))

        new_depths = dict(depths)
        if not drivers:
            if virtual or rank in _statically_driven(ir):
                raise CodegenError(
                    f"rank {rank} is driven only dynamically; unsupported"
                )
            self._dense(level, rank, binds, new_depths, wins, guarded)
            em.indent -= close
            return

        # Narrow each driver's span (projection / follower window) into
        # fresh q-vars; record (i, lvl, arena level, depth, lo, hi, offset).
        specs = []
        for i, lvl in drivers:
            d = depths[i]
            L = self._al(i, d)
            a, b = f"n{i}_{d}a", f"n{i}_{d}b"
            off = None
            if lvl.kind == PLAIN and not lvl.exprs[0].is_var:
                e = lvl.exprs[0]
                bound = [f"v_{v}" for v in e.vars if v != binds[0]]
                offset = " + ".join(bound + [str(e.const)]) or "0"
                origin = ir.origin.get(rank, rank)
                em.emit(f"o{i}_{d} = -({offset})")
                em.emit(
                    f"q{i}_{d}a, q{i}_{d}b = rt.project_span(t{i}_c{L}, "
                    f"{a}, {b}, o{i}_{d}, shapes[{origin!r}])"
                )
                a, b, off = f"q{i}_{d}a", f"q{i}_{d}b", f"o{i}_{d}"
            elif lvl.kind == PLAIN and lvl.exprs[0].is_var and lvl.of in wins:
                em.emit(
                    f"q{i}_{d}a, q{i}_{d}b = rt.window_span(t{i}_c{L}, "
                    f"{a}, {b}, {wins[lvl.of]})"
                )
                a, b = f"q{i}_{d}a", f"q{i}_{d}b"
            specs.append((i, lvl, L, d, a, b, off))
            new_depths[i] = depths[i] + 1
        for i in virtual:
            new_depths[i] = depths[i] + 1

        mode = ir.modes.get(rank, "single")
        stamped = rank in self.stamp_ranks
        if stamped:
            em.emit(f"po_{rank} = -1")

        vec = self._vector_leaf_plan(rank, level, mode, specs, virtual,
                                     binds, new_depths)
        if vec is not None:
            self._emit_vector_leaf(rank, level, vec)
            em.emit("else:")
            em.indent += 1

        if len(specs) == 1:
            opened = self._open_single(rank, level, specs[0])
        elif (
            len(specs) == 2
            and mode != "union"
            and all(ir.accesses[i].conjunctive for i, _ in drivers)
        ):
            opened = self._open_merge2(rank, level, specs)
        else:
            opened = self._open_kway(rank, level, mode, specs)

        # ---- shared loop body -----------------------------------------
        if stamped:
            em.emit(f"po_{rank} += 1")
        if len(binds) == 1:
            em.emit(f"v_{binds[0]} = c_{rank}")
        elif len(binds) > 1:
            em.emit(f"{', '.join('v_' + v for v in binds)} = c_{rank}")
        if self.existential:
            em.emit(f"wr_{level + 1} = False")

        wins2 = dict(wins)
        for j, (i, lvl, L, d, a, b, off) in enumerate(specs):
            of = lvl.of or lvl.rank
            pos = f"p{i}_{d}"
            if self.fused:
                # The traced kernels extend the path unconditionally (the
                # absent k-way branch included); only present cursors
                # ever read it, so the value below absent cursors is
                # irrelevant — but it must be defined.
                em.emit(f"h{i}_{d + 1} = h{i}_{d} + (c_{rank},)")
            if opened["kway"]:
                em.emit(f"{pos} = ps_{rank}[{j}]")
                em.emit(f"if {pos} >= 0:")
                em.indent += 1
            if self.fused and not opened["kway"] and self._deferrable(i):
                # The opener deferred this driver's machine coord read
                # to here; fire the coord+payload pair together.
                self._emit_pair_read(i, of, key=f"h{i}_{d + 1}",
                                     cx=f"cx{level}")
            else:
                self._emit_read(i, of, "payload", key=f"h{i}_{d + 1}",
                                cx=f"cx{level}")
            self._descend(i, d, pos)
            if lvl.kind in (UPPER, FLAT_UPPER):
                prev = wins2.get(lvl.of, "None")
                if opened["kway"]:
                    em.emit(f"w_{lvl.of} = t{i}_r{L + 1}[{pos}]")
                    em.indent -= 1
                    em.emit("else:")
                    em.indent += 1
                    self._absent(i, d + 1)
                    em.emit(f"w_{lvl.of} = {prev}")
                    em.indent -= 1
                else:
                    em.emit(f"w_{lvl.of} = t{i}_r{L + 1}[{pos}]")
                wins2[lvl.of] = f"w_{lvl.of}"
            elif opened["kway"]:
                em.indent -= 1
                em.emit("else:")
                em.indent += 1
                self._absent(i, d + 1)
                em.indent -= 1
        for i in virtual:
            self._copy(i, depths[i])
        if stamped:
            style = ir.time_styles.get(rank, "pos")
            src = f"c_{rank}" if style == "coord" else f"po_{rank}"
            em.emit(f"st_{rank} = {src}")
        if self.fused:
            # The loop-context prefix: what the traced kernel's live
            # ``ctx`` list holds after ``ctx.append((rank, c))``.
            em.emit(f"cx{level + 1} = cx{level} + (({rank!r}, c_{rank}),)")
        self._lookups(level, new_depths)
        self._rank(level + 1, new_depths, wins2, guarded)
        self._propagate_wrote(level, rank)
        self._close_loop(rank, level, opened, specs)
        if vec is not None:
            em.indent -= 1
        em.indent -= close

    # ------------------------------------------------------------------
    # Loop openers: each returns a dict describing how to close the loop.
    # On return the emitter sits *inside* the loop body, right after the
    # ``c_<rank>`` coordinate has been bound, with ``p<i>_<d>`` position
    # vars bound for inline forms.
    # ------------------------------------------------------------------
    def _open_single(self, rank: str, level: int, spec) -> dict:
        em = self.em
        i, lvl, L, d, a, b, off = spec
        pos = f"p{i}_{d}"
        guard = 0
        if not self.ir.accesses[i].conjunctive:
            em.emit(f"if {a} is not None:")
            em.indent += 1
            guard = 1
        em.emit(f"for {pos} in range({a}, {b}):")
        em.indent += 1
        coord = f"t{i}_c{L}[{pos}]"
        if off:
            coord = f"{coord} + {off}"
        em.emit(f"c_{rank} = {coord}")
        if self.fused and self._deferrable(i):
            self._emit_coord_counter(i, (lvl.of or lvl.rank))
        else:
            self._emit_read(i, (lvl.of or lvl.rank), "coord",
                            key=f"h{i}_{d} + (c_{rank},)", cx=f"cx{level}")
        return {"kind": "single", "kway": False, "guard": guard}

    def _open_merge2(self, rank: str, level: int, specs) -> dict:
        em = self.em
        (i0, lvl0, L0, d0, a0, b0, off0), (i1, lvl1, L1, d1, a1, b1, off1) = \
            specs
        p0, p1 = f"p{i0}_{d0}", f"p{i1}_{d1}"
        em.emit(f"{p0} = {a0}")
        em.emit(f"{p1} = {a1}")
        if self.counted:
            em.emit(f"_iv_{rank} = 0")
            em.emit(f"_im_{rank} = 0")
            if rank not in self.isect_ranks:
                self.isect_ranks.append(rank)
        em.emit(f"while {p0} < {b0} and {p1} < {b1}:")
        em.indent += 1
        h0 = f"t{i0}_c{L0}[{p0}]" + (f" + {off0}" if off0 else "")
        h1 = f"t{i1}_c{L1}[{p1}]" + (f" + {off1}" if off1 else "")
        em.emit(f"h0_{rank} = {h0}")
        em.emit(f"h1_{rank} = {h1}")
        em.emit(f"if h0_{rank} == h1_{rank}:")
        em.indent += 1
        em.emit(f"c_{rank} = h0_{rank}")
        if self.counted:
            em.emit(f"_iv_{rank} += 2")
            em.emit(f"_im_{rank} += 1")
            for i_, lvl_, d_ in ((i0, lvl0, d0), (i1, lvl1, d1)):
                of_ = lvl_.of or lvl_.rank
                if self.fused and self._deferrable(i_):
                    self._emit_coord_counter(i_, of_)
                else:
                    self._emit_read(i_, of_, "coord",
                                    key=f"h{i_}_{d_} + (c_{rank},)",
                                    cx=f"cx{level}")
        return {"kind": "merge2", "kway": False, "guard": 0}

    def _open_kway(self, rank: str, level: int, mode: str, specs) -> dict:
        em = self.em
        k = len(specs)
        parts = []
        for i, lvl, L, d, a, b, off in specs:
            parts.append(f"(t{i}_c{L}, {a}, {b}, {off or 0})")
        union = mode == "union"
        helper = "flat_union" if union else "flat_isect"
        size = k if union else k + 2
        em.emit(f"sx_{rank} = [0] * {size}")
        touches = ""
        if self.fused:
            # Per-input touch callbacks: coord read events for inputs
            # routed to a component machine fire from inside the helper,
            # in the traced co-iterator's exact order.
            names = []
            for j, (i, lvl, L, d, a, b, off) in enumerate(specs):
                of = lvl.of or lvl.rank
                port = self._port(self.ir.accesses[i].tensor, of, "coord")
                name = f"tk{j}_{rank}"
                em.emit(
                    f"{name} = None if {port}r is None else rt.make_touch("
                    f"{port}r, {of!r}, h{i}_{d}, cx{level})"
                )
                names.append(name)
            touches = f", ({', '.join(names)},)"
        em.emit(
            f"for c_{rank}, ps_{rank} in rt.{helper}(({', '.join(parts)},), "
            f"sx_{rank}{touches}):"
        )
        em.indent += 1
        if self.counted and not union and rank not in self.isect_ranks:
            self.isect_ranks.append(rank)
        return {"kind": "kway", "kway": True, "union": union, "guard": 0}

    def _skip_reads(self, rank: str, level: int, i: int, lvl, L: int,
                    d: int, off, p: str) -> None:
        """Tally the coordinates a merge2 skip jumped over.

        Counted: one bulk counter bump.  Fused with a live port: the
        machine needs per-element keys, so the galloped-over positions
        replay one at a time (only for machine-routed inputs — DRAM
        routes keep the O(1) bump).
        """
        em = self.em
        of = lvl.of or lvl.rank
        amount = f"nx_{rank} - {p}"
        if not self.fused:
            self._bump_read(i, of, "coord", amount)
            return
        tensor = self.ir.accesses[i].tensor
        port = self._port(tensor, of, "coord")
        em.emit(f"if {port}r is None:")
        em.indent += 1
        em.emit(f"{self._rctr(tensor, of, 'coord')} += {amount}")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit(
            f"{port}.read_span({of!r}, h{i}_{d}, t{i}_c{L}, {p}, "
            f"nx_{rank}, {off or 0}, cx{level})"
        )
        em.indent -= 1

    def _close_loop(self, rank: str, level: int, opened: dict,
                    specs) -> None:
        em = self.em
        if opened["kind"] == "single":
            em.indent -= 1  # for
            em.indent -= opened["guard"]
        elif opened["kind"] == "merge2":
            (i0, lvl0, L0, d0, a0, b0, off0), \
                (i1, lvl1, L1, d1, a1, b1, off1) = specs
            p0, p1 = f"p{i0}_{d0}", f"p{i1}_{d1}"
            em.emit(f"{p0} += 1")
            em.emit(f"{p1} += 1")
            em.indent -= 1  # close the match branch
            em.emit(f"elif h0_{rank} < h1_{rank}:")
            em.indent += 1
            t0 = f"h1_{rank} - {off0}" if off0 else f"h1_{rank}"
            em.emit(f"nx_{rank} = _bl(t{i0}_c{L0}, {t0}, {p0}, {b0})")
            if self.counted:
                em.emit(f"_iv_{rank} += nx_{rank} - {p0}")
                self._skip_reads(rank, level, i0, lvl0, L0, d0, off0, p0)
            em.emit(f"{p0} = nx_{rank}")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            t1 = f"h0_{rank} - {off1}" if off1 else f"h0_{rank}"
            em.emit(f"nx_{rank} = _bl(t{i1}_c{L1}, {t1}, {p1}, {b1})")
            if self.counted:
                em.emit(f"_iv_{rank} += nx_{rank} - {p1}")
                self._skip_reads(rank, level, i1, lvl1, L1, d1, off1, p1)
            em.emit(f"{p1} = nx_{rank}")
            em.indent -= 1
            em.indent -= 1  # close the while body
            if self.counted:
                # Runs only on normal exit: an abandoned co-iteration
                # drops its isect event, exactly like the traced stream.
                em.emit("else:")
                em.indent += 1
                em.emit(f"iv_{rank} += _iv_{rank}")
                em.emit(f"im_{rank} += _im_{rank}")
                em.indent -= 1
        else:  # kway
            em.indent -= 1  # close the for body
            if self.counted and not opened["union"]:
                k = len(specs)
                em.emit("else:")
                em.indent += 1
                em.emit(f"iv_{rank} += sx_{rank}[{k}]")
                em.emit(f"im_{rank} += sx_{rank}[{k + 1}]")
                em.indent -= 1
            if self.counted:
                # Visit tallies are eager in the helper, so they stay
                # correct even when the loop breaks early.  Machine-routed
                # inputs (fused) already fired their per-element touches
                # inside the helper.
                for j, (i, lvl, L, d, a, b, off) in enumerate(specs):
                    of = lvl.of or lvl.rank
                    tensor = self.ir.accesses[i].tensor
                    if self.fused:
                        port = self._port(tensor, of, "coord")
                        em.emit(f"if {port}r is None:")
                        em.indent += 1
                        em.emit(
                            f"{self._rctr(tensor, of, 'coord')} += "
                            f"sx_{rank}[{j}]"
                        )
                        em.indent -= 1
                    else:
                        self._bump_read(i, of, "coord", f"sx_{rank}[{j}]")

    # ------------------------------------------------------------------
    # Vector leaves (the "vector" flavor): price an entire innermost-rank
    # span with batched numpy ops.  Eligibility is decided statically per
    # loop; the generated branch still guards on runtime facts (numpy
    # buffers present, elementwise opset, span large enough) and falls
    # through to the inline scalar loop otherwise, so outputs and tallies
    # never depend on which path ran.
    # ------------------------------------------------------------------
    def _leaf_lookups_advance(self, level: int,
                              depths: Dict[int, int]) -> bool:
        """Would the in-loop :meth:`_lookups` pass advance any cursor at
        the innermost rank?  (A dry-run of its break conditions: a leaf
        that performs per-element lookups emits per-element events and
        must stay scalar.)"""
        ir = self.ir
        bound_vars = set()
        for r in ir.loop_ranks[: level + 1]:
            bound_vars.update(ir.binds.get(r, ()))
        for i, plan in enumerate(ir.accesses):
            d = depths[i]
            if d >= len(plan.levels):
                continue
            lvl = plan.levels[d]
            if lvl.kind == VIRTUAL:
                continue
            later_rank = lvl.rank in ir.loop_ranks[level + 1:]
            if lvl.kind in (UPPER, FLAT_UPPER):
                below = _physical_below(plan, d, lvl.of)
                if below is None or any(
                    set(e.vars) - bound_vars for e in below.exprs
                ) or later_rank and _drivable(
                    lvl, ir.binds.get(lvl.rank, ())
                ):
                    continue
                return True
            if any(set(e.vars) - bound_vars for e in lvl.exprs):
                continue
            if later_rank and _drivable(lvl, ir.binds.get(lvl.rank, ())):
                continue
            return True
        return False

    def _vec_value_plan(self, depths: Dict[int, int],
                        driver_map: Dict[int, str]):
        """(value code, scalar refs, mul count) of a batched leaf value.

        Only pure products vectorize (arbitrary nesting of ``Mul`` over
        ``Access``, folded in exactly the scalar emitters' association
        order — elementwise multiplication is IEEE-exact under any
        operand shapes, but the grouping must match).  ``None`` means
        the expression keeps the scalar path (Add/Take leaves).
        """
        scalars: List[str] = []
        counter = [0]
        muls = [0]

        def walk(e):
            if isinstance(e, Access):
                i = counter[0]
                counter[0] += 1
                code = driver_map.get(i)
                if code is None:
                    code = self._scalar_ref(i, depths[i])
                    scalars.append(code)
                return code
            if isinstance(e, Mul):
                parts = [walk(f) for f in e.factors]
                if any(p is None for p in parts):
                    return None
                folded = parts[0]
                for p in parts[1:]:
                    muls[0] += 1
                    folded = f"opset.mul({folded}, {p})"
                return folded
            return None

        code = walk(self.ir.einsum.expr)
        if code is None:
            return None
        if not all(v in code for v in driver_map.values()):
            return None  # a driver's values never reach the product
        return code, scalars, muls[0]

    def _stamp_desc(self, rank: str, ranks: List[str]) -> dict:
        """How one stamp tuple set behaves across an innermost span:
        constant (the rank is absent) or varying in exactly one slot."""
        if rank in ranks:
            k = ranks.index(rank)
            pre = "(" + "".join(f"st_{r}, " for r in ranks[:k]) + ")"
            post = "(" + "".join(f"st_{r}, " for r in ranks[k + 1:]) + ")"
            return {"varies": True, "pre": pre, "post": post, "const": None}
        const = "(" + "".join(f"st_{r}, " for r in ranks) + ")"
        return {"varies": False, "pre": None, "post": None, "const": const}

    def _vector_leaf_plan(self, rank: str, level: int, mode: str, specs,
                          virtual, binds, new_depths: Dict[int, int]):
        """Static eligibility of a vectorized leaf for this rank, or
        ``None``.  The conditions mirror exactly what the batched
        primitives can reproduce bit-identically: one or two PLAIN
        drivers descending straight to leaf scalars, an intersect (not
        union) merge, a pure-product expression, reduction into a single
        output element (no inner var in the output point), no take()
        short-circuits, no per-element lookups, and no tensor whose
        component machine would see interleaved per-element event orders
        (self-intersections, read-modify-write outputs)."""
        if not self.vector or level != self.n_ranks - 1:
            return None
        ir = self.ir
        if self.existential or virtual or len(binds) > 1:
            return None
        if len(specs) not in (1, 2):
            return None
        if ir.einsum.is_take:
            return None
        for i, lvl, L, d, a, b, off in specs:
            if lvl.kind != PLAIN:
                return None
            if self._al(i, d) + 1 != self.n_phys[i]:
                return None
        if len(specs) == 2:
            if mode == "union":
                return None
            if not all(ir.accesses[i].conjunctive for i, *_ in specs):
                return None
            if ir.accesses[specs[0][0]].tensor == \
                    ir.accesses[specs[1][0]].tensor:
                return None
        if any(p.tensor == ir.output.tensor for p in ir.accesses):
            return None
        if self._leaf_lookups_advance(level, dict(new_depths)):
            return None
        v = binds[0] if binds else None
        out_idx = ir.output.indices
        if v is not None and any(v in e.vars for e in out_idx):
            return None  # scatter-into-output leaves stay scalar
        drivers = []
        driver_map: Dict[int, str] = {}
        for j, (i, lvl, L, d, a, b, off) in enumerate(specs):
            plan = ir.accesses[i]
            drivers.append({
                "j": j, "i": i, "L": L, "d": d, "a": a, "b": b,
                "off": off or "0", "of": lvl.of or lvl.rank,
                "tensor": plan.tensor, "conj": plan.conjunctive,
            })
            driver_map[i] = f"vc_w{j}"
        value = self._vec_value_plan(new_depths, driver_map)
        if value is None:
            return None
        value_code, scalars, k_mul = value
        return {
            "drivers": drivers,
            "merge": len(specs) == 2,
            "value": value_code,
            "scalars": list(dict.fromkeys(scalars)),
            "k_mul": k_mul,
            "prefix": _point_code(out_idx[:-1]),
            "leaf": _expr_code(out_idx[-1]) if out_idx else "0",
            "point": _point_code(out_idx),
            "out_tensor": ir.output.tensor,
            "out_rank": (ir.output.storage_ranks[-1]
                         if ir.output.storage_ranks else "root"),
            "ts": self._stamp_desc(rank, list(ir.time_ranks)),
            "ss": self._stamp_desc(rank, list(ir.space_ranks)),
            "style": ir.time_styles.get(rank, "pos"),
        }

    def _emit_vector_leaf(self, rank: str, level: int, vec: dict) -> None:
        """The batched branch: ``if <runtime guards>:`` plus its body.
        The caller emits the matching ``else:`` with the scalar loop."""
        em = self.em
        drivers = vec["drivers"]
        merge = vec["merge"]
        conds = ["_vk"]
        sizes = []
        for drv in drivers:
            if not drv["conj"]:
                conds.append(f"{drv['a']} is not None")
            sizes.append(f"({drv['b']} - {drv['a']})")
            self.vec_coords.add((drv["i"], drv["L"]))
            self.vec_vals.add(drv["i"])
            conds.append(f"t{drv['i']}_cn{drv['L']} is not None")
            conds.append(f"t{drv['i']}_vn is not None")
        conds.append(f"{' + '.join(sizes)} >= rt.VLEAF_MIN")
        em.emit(f"if {' and '.join(conds)}:")
        em.indent += 1
        if merge:
            d0, d1 = drivers
            em.emit(
                f"vc_q0, vc_q1, vc_n0, vc_n1 = rt.visect2("
                f"t{d0['i']}_cn{d0['L']}, {d0['a']}, {d0['b']}, "
                f"{d0['off']}, "
                f"t{d1['i']}_cn{d1['L']}, {d1['a']}, {d1['b']}, "
                f"{d1['off']})"
            )
            em.emit("vc_m = len(vc_q0)")
            if rank not in self.isect_ranks:
                self.isect_ranks.append(rank)
            em.emit(f"iv_{rank} += vc_n0 + vc_n1")
            em.emit(f"im_{rank} += vc_m")
        else:
            d0 = drivers[0]
            em.emit(f"vc_m = {d0['b']} - {d0['a']}")
        # The loop coordinates of the span's effectual elements (the
        # shifted matched coordinates — identical through either merge
        # driver), materialized at most once per span on first need:
        # stamp tuples, payload-port reads, and output writes share it.
        em.emit("vc_c = None")
        for drv in drivers:
            self._emit_vector_reads(level, drv, merge, d0)
        self._emit_vector_effectual(rank, level, vec)
        em.indent -= 1

    def _emit_vc_coords(self, d0: dict, merge: bool) -> None:
        """Lazily bind ``vc_c`` (see :meth:`_emit_vector_leaf`)."""
        em = self.em
        em.emit("if vc_c is None:")
        em.indent += 1
        if merge:
            em.emit(f"vc_c = rt.vtake(t{d0['i']}_cn{d0['L']}, vc_q0, "
                    f"{d0['off']})")
        else:
            em.emit(f"vc_c = rt.vslice(t{d0['i']}_cn{d0['L']}, {d0['a']}, "
                    f"{d0['b']}, {d0['off']})")
        em.indent -= 1

    def _emit_vector_reads(self, level: int, drv: dict,
                           merge: bool, d0: dict) -> None:
        """One driver's coord+payload event accounting for a whole span.

        Per machine, the traced order within the span is: one coord read
        per *visited* coordinate ascending (matched and galloped-over
        alike), plus one payload read per *matched* coordinate — so a
        machine owning both ports batches as ``read_span`` over the
        visited prefix plus a :meth:`~repro.ir.codegen_runtime.FusedBuffet.pair_extra`
        bump for the matched subset, and split ports batch each side
        independently.  DRAM-routed sides are pure counter adds.
        """
        em = self.em
        i, j, L, d = drv["i"], drv["j"], drv["L"], drv["d"]
        of, tensor, off = drv["of"], drv["tensor"], drv["off"]
        a, b = drv["a"], drv["b"]
        pc = self._port(tensor, of, "coord")
        pp = self._port(tensor, of, "payload")
        crc = self._rctr(tensor, of, "coord")
        crp = self._rctr(tensor, of, "payload")
        vis = f"vc_n{j}" if merge else "vc_m"
        hi = f"{a} + vc_n{j}" if merge else b
        span = (f"{pc}.read_span({of!r}, h{i}_{d}, t{i}_c{L}, {a}, {hi}, "
                f"{off}, cx{level})")
        em.emit(f"if {pc} is not None and {pc} is {pp}:")
        em.indent += 1
        em.emit(span)
        em.emit(f"{pc}.pair_extra(vc_m)")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit(f"if {pc} is None:")
        em.indent += 1
        em.emit(f"{crc} += {vis}")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit(span)
        em.indent -= 1
        em.emit(f"if {pp} is None:")
        em.indent += 1
        em.emit(f"{crp} += vc_m")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        if merge:
            self._emit_vc_coords(d0, merge)
            em.emit(f"{pp}.read_span({of!r}, h{i}_{d}, vc_c, 0, vc_m, 0, "
                    f"cx{level})")
        else:
            em.emit(f"{pp}.read_span({of!r}, h{i}_{d}, t{i}_c{L}, {a}, "
                    f"{b}, {off}, cx{level})")
        em.indent -= 2

    def _emit_vector_effectual(self, rank: str, level: int,
                               vec: dict) -> None:
        """Batched compute counting, stamp sets, reduction, and output
        writes of a span — bit-equal to the scalar leaf run ``vc_m``
        times (the first element of a freshly absent output point is the
        copy/no-add element, exactly as ``reduce_leaf`` prices it)."""
        em = self.em
        drivers = vec["drivers"]
        merge = vec["merge"]
        d0 = drivers[0]
        em.emit("if vc_m:")
        em.indent += 1
        guard = 0
        if vec["scalars"]:
            cond = " or ".join(f"{s} is None" for s in vec["scalars"])
            em.emit(f"if not ({cond}):")
            em.indent += 1
            guard = 1
        for drv in drivers:
            if merge:
                em.emit(f"vc_w{drv['j']} = t{drv['i']}_vn[vc_q{drv['j']}]")
            else:
                em.emit(f"vc_w{drv['j']} = "
                        f"t{drv['i']}_vn[{drv['a']}:{drv['b']}]")
        em.emit(f"vc_val = {vec['value']}")
        ts, ss = vec["ts"], vec["ss"]
        if vec["style"] == "coord" and (ts["varies"] or ss["varies"]):
            self._emit_vc_coords(d0, merge)
            inner = "vc_c"
        else:
            inner = "range(vc_m)"
        if ts["varies"]:
            em.emit(f"vc_ts = rt.vstamps({ts['pre']}, {ts['post']}, "
                    f"{inner})")
        else:
            em.emit(f"vc_t = {ts['const']}")
        if ss["varies"]:
            em.emit(f"vc_ss = rt.vstamps({ss['pre']}, {ss['post']}, "
                    f"{inner})")
        else:
            em.emit(f"vc_s = {ss['const']}")

        def ts_code(op, sel):
            if ts["varies"]:
                return {"all": f"cs_{op}.update(vc_ts)",
                        "first": f"cs_{op}.add(vc_ts[0])",
                        "rest": f"cs_{op}.update(vc_ts[1:])"}[sel]
            return f"cs_{op}.add(vc_t)"

        def ss_code(op, sel):
            if ss["varies"]:
                return {"all": f"cl_{op}.update(vc_ss)",
                        "first": f"cl_{op}.add(vc_ss[0])",
                        "rest": f"cl_{op}.update(vc_ss[1:])"}[sel]
            return f"cl_{op}.add(vc_s)"

        k_mul = vec["k_mul"]
        if k_mul:
            em.emit(f"cn_mul += {k_mul} * vc_m")
            em.emit(ts_code("mul", "all"))
            em.emit(ss_code("mul", "all"))
        em.emit(f"_pp = {vec['prefix']}")
        em.emit("if _pp != _op:")
        em.indent += 1
        em.emit("_on = rt.out_ref(out, _pp)")
        em.emit("_op = _pp")
        em.indent -= 1
        em.emit(f"vc_old = _on.get_payload({vec['leaf']})")
        em.emit(f"_on.set_payload({vec['leaf']}, "
                f"rt.vreduce(vc_old, vc_val))")
        em.emit("if vc_old is None:")
        em.indent += 1
        if not k_mul:
            em.emit("cn_copy += 1")
            em.emit(ts_code("copy", "first"))
            em.emit(ss_code("copy", "first"))
        em.emit("cn_add += vc_m - 1")
        em.emit("if vc_m > 1:")
        em.indent += 1
        em.emit(ts_code("add", "rest"))
        em.emit(ss_code("add", "rest"))
        em.indent -= 1
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit("cn_add += vc_m")
        em.emit(ts_code("add", "all"))
        em.emit(ss_code("add", "all"))
        em.indent -= 1
        out_t, out_r = vec["out_tensor"], vec["out_rank"]
        pw = self._port(out_t, out_r, "elem")
        wctr = self._wctr(out_t, out_r, "elem")
        em.emit(f"if {pw} is None:")
        em.indent += 1
        em.emit(f"{wctr} += vc_m")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        self._emit_vc_coords(d0, merge)
        em.emit(f"{pw}.write_seq({out_r!r}, {vec['point']}, {rank!r}, "
                f"vc_c, cx{level})")
        em.indent -= 1
        em.indent -= guard
        em.indent -= 1

    # ------------------------------------------------------------------
    def _propagate_wrote(self, level: int, rank: str) -> None:
        if not self.existential:
            return
        em = self.em
        em.emit(f"if wr_{level + 1}:")
        em.indent += 1
        em.emit(f"wr_{level} = True")
        if rank in self.existential:
            em.emit("break")
        em.indent -= 1

    # ------------------------------------------------------------------
    def _dense(self, level: int, rank: str, binds, depths: Dict[int, int],
               wins: Dict[str, str], guarded: Set[str]) -> None:
        ir, em = self.ir, self.em
        if len(binds) != 1:
            raise CodegenError(f"cannot iterate rank {rank} densely")
        origin = ir.origin.get(rank, rank)
        var = binds[0]
        em.emit(f"for v_{var} in range(shapes[{origin!r}]):")
        em.indent += 1
        if self.existential:
            em.emit(f"wr_{level + 1} = False")
        if rank in self.stamp_ranks:
            em.emit(f"st_{rank} = v_{var}")
        if self.fused:
            em.emit(f"cx{level + 1} = cx{level} + (({rank!r}, v_{var}),)")
        self._lookups(level, depths)
        self._rank(level + 1, depths, wins, guarded)
        self._propagate_wrote(level, rank)
        em.indent -= 1

    # ------------------------------------------------------------------
    def _lookups(self, level: int, depths: Dict[int, int]) -> None:
        """Advance cursors through levels fully bound after this rank.

        The break conditions are copied verbatim from the object
        generator so both kernels advance at exactly the same points.
        """
        ir, em = self.ir, self.em
        bound_vars = set()
        for r in ir.loop_ranks[: level + 1]:
            bound_vars.update(ir.binds.get(r, ()))
        for i, plan in enumerate(ir.accesses):
            d = depths[i]
            while d < len(plan.levels):
                lvl = plan.levels[d]
                if lvl.kind == VIRTUAL:
                    break  # virtual levels advance only at their loop rank
                later_rank = lvl.rank in ir.loop_ranks[level + 1:]
                of = lvl.of or lvl.rank
                L = self._al(i, d)
                pos = f"p{i}_{d}"
                if lvl.kind in (UPPER, FLAT_UPPER):
                    below = _physical_below(plan, d, lvl.of)
                    if below is None or any(
                        set(e.vars) - bound_vars for e in below.exprs
                    ) or later_rank and _drivable(
                        lvl, ir.binds.get(lvl.rank, ())
                    ):
                        break
                    target = _coord_code(below)
                    em.emit(f"if n{i}_{d}a is None:")
                    em.indent += 1
                    self._absent(i, d + 1)
                    em.indent -= 1
                    em.emit("else:")
                    em.indent += 1
                    em.emit(
                        f"{pos} = rt.span_chunk(t{i}_c{L}, n{i}_{d}a, "
                        f"n{i}_{d}b, {target})"
                    )
                    em.emit(f"if {pos} < 0:")
                    em.indent += 1
                    self._absent(i, d + 1)
                    em.indent -= 1
                    em.emit("else:")
                    em.indent += 1
                    if self.fused:
                        em.emit(
                            f"h{i}_{d + 1} = h{i}_{d} + (t{i}_c{L}[{pos}],)"
                        )
                    self._emit_read(i, of, "coord", key=f"h{i}_{d + 1}",
                                    cx=f"cx{level + 1}")
                    self._descend(i, d, pos)
                    em.indent -= 2
                    d += 1
                    depths[i] = d
                    continue
                unbound = any(set(e.vars) - bound_vars for e in lvl.exprs)
                if unbound:
                    break
                if later_rank and _drivable(lvl, ir.binds.get(lvl.rank, ())):
                    break  # it will drive its own loop
                em.emit(f"if n{i}_{d}a is None:")
                em.indent += 1
                self._absent(i, d + 1)
                em.indent -= 1
                em.emit("else:")
                em.indent += 1
                if self.fused:
                    # Lookups are straight-line: the machine coord read
                    # can always defer past span_find, pairing with the
                    # payload read on hits (counter half bumps now —
                    # counters are order-insensitive).
                    em.emit(
                        f"h{i}_{d + 1} = h{i}_{d} + ({_coord_code(lvl)},)"
                    )
                    self._emit_coord_counter(i, of)
                else:
                    self._emit_read(i, of, "coord", key=f"h{i}_{d + 1}",
                                    cx=f"cx{level + 1}")
                em.emit(
                    f"{pos} = rt.span_find(t{i}_c{L}, n{i}_{d}a, "
                    f"n{i}_{d}b, {_coord_code(lvl)})"
                )
                em.emit(f"if {pos} < 0:")
                em.indent += 1
                if self.fused:
                    pc = self._port(self.ir.accesses[i].tensor, of, "coord")
                    em.emit(f"if {pc}r is not None:")
                    em.indent += 1
                    em.emit(f"{pc}r({of!r}, h{i}_{d + 1}, cx{level + 1})")
                    em.indent -= 1
                self._absent(i, d + 1)
                em.indent -= 1
                em.emit("else:")
                em.indent += 1
                if self.fused:
                    self._emit_pair_read(i, of, key=f"h{i}_{d + 1}",
                                         cx=f"cx{level + 1}")
                else:
                    self._emit_read(i, of, "payload", key=f"h{i}_{d + 1}",
                                    cx=f"cx{level + 1}")
                self._descend(i, d, pos)
                em.indent -= 2
                d += 1
                depths[i] = d

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def _scalar_ref(self, i: int, d: int) -> str:
        """The leaf scalar of access ``i`` at depth ``d`` (None if absent
        or not fully descended — mirroring ``rt.scalar`` on a fiber)."""
        if self._is_scalar(i, d):
            return f"n{i}_{d}"
        return "None"

    def _leaf(self, depths: Dict[int, int]) -> None:
        if self.counted:
            self._leaf_counted(depths)
        else:
            self._leaf_flat(depths)

    def _emit_reduce(self, target: str, value: str) -> None:
        """Reduce ``value`` into the output at the current point.

        The output subtree at the point's prefix is memoized in
        ``_on``/``_op`` (it changes only when an outer loop advances), so
        consecutive leaves skip the root-to-leaf descent.
        """
        ir, em = self.ir, self.em
        indices = ir.output.indices
        prefix = _point_code(indices[:-1])
        leaf = _expr_code(indices[-1]) if indices else "0"
        overwrite = "True" if ir.einsum.is_take else "False"
        em.emit(f"_pp = {prefix}")
        em.emit("if _pp != _op:")
        em.indent += 1
        em.emit("_on = rt.out_ref(out, _pp)")
        em.emit("_op = _pp")
        em.indent -= 1
        em.emit(
            f"{target}rt.reduce_leaf(_on, {leaf}, {value}, opset, "
            f"{overwrite})"
        )

    def _leaf_flat(self, depths: Dict[int, int]) -> None:
        ir, em = self.ir, self.em
        counter = [0]
        value = self._fast_expr(ir.einsum.expr, depths, counter)
        em.emit(f"value = {value}")
        em.emit("if value is not None:")
        em.indent += 1
        self._emit_reduce("", "value")
        if self.existential:
            em.emit(f"wr_{self.n_ranks} = True")
        em.indent -= 1

    def _fast_expr(self, expr: Expr, depths, counter) -> str:
        if isinstance(expr, Access):
            i = counter[0]
            counter[0] += 1
            return self._scalar_ref(i, depths[i])
        if isinstance(expr, Mul):
            parts = [self._fast_expr(f, depths, counter)
                     for f in expr.factors]
            inner = parts[0]
            for p in parts[1:]:
                inner = f"_mul(opset, {inner}, {p})"
            return inner
        if isinstance(expr, Add):
            left = self._fast_expr(expr.left, depths, counter)
            right = self._fast_expr(expr.right, depths, counter)
            op = "_sub" if expr.negate else "_add"
            return f"{op}(opset, {left}, {right})"
        if isinstance(expr, Take):
            args = []
            for _ in expr.args:
                i = counter[0]
                counter[0] += 1
                args.append(self._scalar_ref(i, depths[i]))
            return f"_take([{', '.join(args)}], {expr.which})"
        raise CodegenError(f"cannot generate flat code for {expr!r}")

    def _leaf_counted(self, depths: Dict[int, int]) -> None:
        ir, em = self.ir, self.em
        em.emit("mu = 0")
        em.emit("ad = 0")
        counter = [0]
        value = self._counted_expr(ir.einsum.expr, depths, counter)
        point = _point_code(ir.output.indices)
        em.emit(f"if {value} is not None:")
        em.indent += 1
        self._emit_reduce("ad += ", value)
        ts = "(" + "".join(f"st_{r}, " for r in ir.time_ranks) + ")"
        ss = "(" + "".join(f"st_{r}, " for r in ir.space_ranks) + ")"
        em.emit(f"_ts = {ts}")
        em.emit(f"_ss = {ss}")
        em.emit("if mu:")
        em.indent += 1
        em.emit("cn_mul += mu")
        em.emit("cs_mul.add(_ts)")
        em.emit("cl_mul.add(_ss)")
        em.indent -= 1
        em.emit("if ad:")
        em.indent += 1
        em.emit("cn_add += ad")
        em.emit("cs_add.add(_ts)")
        em.emit("cl_add.add(_ss)")
        em.indent -= 1
        em.emit("if not mu and not ad:")
        em.indent += 1
        em.emit("cn_copy += 1")
        em.emit("cs_copy.add(_ts)")
        em.emit("cl_copy.add(_ss)")
        em.indent -= 1
        out_rank = (ir.output.storage_ranks[-1]
                    if ir.output.storage_ranks else "root")
        wctr = self._wctr(ir.output.tensor, out_rank, "elem")
        if self.fused:
            port = self._port(ir.output.tensor, out_rank, "elem")
            em.emit(f"if {port}w is None:")
            em.indent += 1
            em.emit(f"{wctr} += 1")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            em.emit(f"{port}w({out_rank!r}, {point}, cx{self.n_ranks})")
            em.indent -= 1
        else:
            em.emit(f"{wctr} += 1")
        if self.existential:
            em.emit(f"wr_{self.n_ranks} = True")
        em.indent -= 1

    def _tmp(self) -> str:
        self._tmp_count += 1
        return f"t{self._tmp_count}"

    def _counted_expr(self, expr: Expr, depths, counter) -> str:
        """Counted analog of the traced expression emitter: exact op
        counts, scalars read straight from the arena cursors."""
        em = self.em
        if isinstance(expr, Access):
            i = counter[0]
            counter[0] += 1
            return self._scalar_ref(i, depths[i])
        if isinstance(expr, Mul):
            parts = [self._counted_expr(f, depths, counter)
                     for f in expr.factors]
            v = self._tmp()
            cond = " or ".join(f"{p} is None" for p in parts)
            em.emit(f"if {cond}:")
            em.indent += 1
            em.emit(f"{v} = None")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            folded = parts[0]
            for p in parts[1:]:
                folded = f"opset.mul({folded}, {p})"
            em.emit(f"{v} = {folded}")
            em.emit(f"mu += {len(parts) - 1}")
            em.indent -= 1
            return v
        if isinstance(expr, Add):
            left = self._counted_expr(expr.left, depths, counter)
            right = self._counted_expr(expr.right, depths, counter)
            v = self._tmp()
            em.emit(f"if {left} is None and {right} is None:")
            em.indent += 1
            em.emit(f"{v} = None")
            em.indent -= 1
            em.emit(f"elif {right} is None:")
            em.indent += 1
            em.emit(f"{v} = {left}")
            em.indent -= 1
            em.emit(f"elif {left} is None:")
            em.indent += 1
            em.emit(f"{v} = {'None' if expr.negate else right}")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            op = "sub" if expr.negate else "add"
            em.emit(f"{v} = opset.{op}({left}, {right})")
            em.emit("ad += 1")
            em.indent -= 1
            return v
        if isinstance(expr, Take):
            args = []
            for _ in expr.args:
                i = counter[0]
                counter[0] += 1
                args.append(self._scalar_ref(i, depths[i]))
            v = self._tmp()
            cond = " or ".join(f"{a} is None" for a in args)
            em.emit(f"if {cond}:")
            em.indent += 1
            em.emit(f"{v} = None")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            em.emit(f"{v} = {args[expr.which]}")
            em.indent -= 1
            return v
        raise CodegenError(f"cannot generate flat code for {expr!r}")


def generate_flat_source(ir: LoopNestIR, func_name: str = "kernel",
                         counted: bool = False, fused: bool = False,
                         vector: bool = False) -> str:
    """Generate arena-native Python source for one lowered Einsum.

    ``counted`` adds fused counters; ``fused`` additionally inlines the
    buffet/cache component state machines (implies counters); ``vector``
    additionally batches eligible innermost-rank spans through numpy
    primitives (implies fused — with a null routing plan the machines
    degrade to counters, so one vector kernel serves both sink-less and
    buffered specs).
    """
    return _FlatGenerator(ir, func_name, counted, fused, vector).generate()
