"""Code generation: lower loop-nest IR to standalone Python source.

This is the "simulator generator" output stage in the spirit of the paper's
HiFiber backend (section 4.3): the IR becomes a plain Python function whose
nested loops co-iterate fibertrees through a small runtime
(:mod:`repro.ir.codegen_runtime`).  The generated source is readable,
importable, and — for the supported mapping subset — produces exactly the
same outputs as the interpreting executor (tests enforce this).

Supported: plain/flat/upper levels, eager shape and occupancy splits,
flattening, inferred swizzles, lookups (including chunk search), affine
projection, intersect/union/single co-iteration, take()/Mul/Add leaves,
dense iteration for undriven ranks.  Not supported: occupancy *followers*
(virtual levels) — those need runtime windows; use the interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..einsum.ast import Access, Add, Expr, Mul, Take
from .nodes import FLAT, FLAT_UPPER, PLAIN, UPPER, VIRTUAL, LoopNestIR


class CodegenError(NotImplementedError):
    pass


class _Emitter:
    def __init__(self):
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.indent + text if text else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _expr_code(e) -> str:
    """Python expression computing an IndexExpr from bound loop variables."""
    parts = [f"v_{v}" for v in e.vars]
    if e.const or not parts:
        parts.append(str(e.const))
    return " + ".join(parts)


def generate_source(ir: LoopNestIR, func_name: str = "kernel") -> str:
    """Generate Python source for one lowered Einsum.

    The generated function has the signature
    ``kernel(tensors, opset, shapes)`` where ``tensors`` maps names to
    *prepared* tensors (rank-order swizzle and prep steps already applied,
    e.g. via :func:`repro.model.executor.prepare_tensor`) and returns the
    output :class:`~repro.fibertree.tensor.Tensor`.
    """
    for plan in ir.accesses:
        for lvl in plan.levels:
            if lvl.kind == VIRTUAL:
                raise CodegenError(
                    f"codegen does not support occupancy followers "
                    f"(tensor {plan.tensor}); use the interpreter"
                )

    em = _Emitter()
    em.emit(f"def {func_name}(tensors, opset, shapes):")
    em.indent += 1
    em.emit(f'"""Generated from: {ir.einsum}"""')
    # Cursor roots, one per access (duplicate tensors get distinct cursors).
    for i, plan in enumerate(ir.accesses):
        em.emit(f"n{i}_0 = tensors[{plan.tensor!r}].root")
    em.emit("out = Fiber()")
    depths = {i: 0 for i in range(len(ir.accesses))}
    # Literal-index levels (e.g. the FFT's P[0, k0, n1, 0]) are bound
    # before any loop runs; advance those cursors up front.
    _emit_lookups(em, ir, level=-1, depths=depths)
    _emit_rank(em, ir, level=0, depths=depths)
    em.emit(
        "return Tensor("
        f"{ir.output.tensor!r}, {ir.output.storage_ranks!r}, out, "
        f"[shapes.get(r) for r in {ir.output.storage_ranks!r}])"
    )
    em.indent -= 1
    return em.source()


def _emit_rank(em: _Emitter, ir: LoopNestIR, level: int,
               depths: Dict[int, int]) -> None:
    if level == len(ir.loop_ranks):
        _emit_leaf(em, ir, depths)
        return
    rank = ir.loop_ranks[level]
    binds = ir.binds.get(rank, ())

    drivers: List[Tuple[int, object]] = []
    for i, plan in enumerate(ir.accesses):
        d = depths[i]
        if d < len(plan.levels) and plan.levels[d].rank == rank:
            lvl = plan.levels[d]
            if _drivable(lvl, binds):
                drivers.append((i, lvl))

    new_depths = dict(depths)
    if not drivers:
        if rank in _statically_driven(ir):
            raise CodegenError(
                f"rank {rank} is driven only dynamically; unsupported"
            )
        _emit_dense(em, ir, level, rank, binds, new_depths)
        return

    fiber_exprs = []
    for i, lvl in drivers:
        base = f"n{i}_{depths[i]}"
        if lvl.kind == PLAIN and not lvl.exprs[0].is_var:
            e = lvl.exprs[0]
            bound = [f"v_{v}" for v in e.vars if v != binds[0]]
            offset = " + ".join(bound + [str(e.const)]) or "0"
            origin = ir.origin.get(rank, rank)
            fiber_exprs.append(
                f"rt.project({base}, -({offset}), shapes[{origin!r}])"
            )
        else:
            fiber_exprs.append(base)
        new_depths[i] = depths[i] + 1

    mode = ir.modes.get(rank, "single")
    if len(drivers) == 1:
        call = f"rt.iterate({fiber_exprs[0]})"
    elif mode == "union":
        call = f"rt.coiterate_union({', '.join(fiber_exprs)})"
    else:
        call = f"rt.coiterate_intersect({', '.join(fiber_exprs)})"

    payloads = ", ".join(f"p{i}" for i, _ in drivers)
    em.emit(f"for c_{rank}, [{payloads}] in {call}:")
    em.indent += 1
    if len(binds) == 1:
        em.emit(f"v_{binds[0]} = c_{rank}")
    elif len(binds) > 1:
        em.emit(f"{', '.join('v_' + v for v in binds)} = c_{rank}")
    for i, _ in drivers:
        em.emit(f"n{i}_{new_depths[i]} = p{i}")
    _emit_lookups(em, ir, level, new_depths)
    _emit_rank(em, ir, level + 1, new_depths)
    em.indent -= 1


def _emit_dense(em, ir, level, rank, binds, depths) -> None:
    if len(binds) != 1:
        raise CodegenError(f"cannot iterate rank {rank} densely")
    origin = ir.origin.get(rank, rank)
    em.emit(f"for v_{binds[0]} in range(shapes[{origin!r}]):")
    em.indent += 1
    _emit_lookups(em, ir, level, depths)
    _emit_rank(em, ir, level + 1, depths)
    em.indent -= 1


def _emit_lookups(em: _Emitter, ir: LoopNestIR, level: int,
                  depths: Dict[int, int]) -> None:
    """Advance cursors through levels fully bound after this rank."""
    bound_vars = set()
    for r in ir.loop_ranks[: level + 1]:
        bound_vars.update(ir.binds.get(r, ()))
    for i, plan in enumerate(ir.accesses):
        d = depths[i]
        while d < len(plan.levels):
            lvl = plan.levels[d]
            later_rank = lvl.rank in ir.loop_ranks[level + 1:]
            if lvl.kind in (UPPER, FLAT_UPPER):
                below = _physical_below(plan, d, lvl.of)
                if below is None or any(
                    set(e.vars) - bound_vars for e in below.exprs
                ) or later_rank and _drivable(lvl, ir.binds.get(lvl.rank, ())):
                    break
                target = _coord_code(below)
                em.emit(f"n{i}_{d + 1} = rt.lookup_chunk(n{i}_{d}, {target})")
                d += 1
                depths[i] = d
                continue
            unbound = any(set(e.vars) - bound_vars for e in lvl.exprs)
            if unbound:
                break
            if later_rank and _drivable(lvl, ir.binds.get(lvl.rank, ())):
                break  # it will drive its own loop
            em.emit(
                f"n{i}_{d + 1} = rt.lookup(n{i}_{d}, {_coord_code(lvl)})"
            )
            d += 1
            depths[i] = d


def _coord_code(lvl) -> str:
    if lvl.kind == FLAT or len(lvl.exprs) > 1:
        return "(" + ", ".join(_expr_code(e) for e in lvl.exprs) + ")"
    return _expr_code(lvl.exprs[0])


def _physical_below(plan, depth, of):
    for lvl in plan.levels[depth + 1:]:
        if lvl.of == of and lvl.kind in (PLAIN, FLAT):
            return lvl
    return None


def _drivable(lvl, binds) -> bool:
    if lvl.kind in (UPPER, FLAT_UPPER):
        return True
    if lvl.kind == FLAT:
        return tuple(v for e in lvl.exprs for v in e.vars) == binds
    expr = lvl.exprs[0]
    if expr.is_var:
        return binds == expr.vars
    return len(binds) == 1 and binds[0] in expr.vars and expr.vars


def _statically_driven(ir) -> set:
    out = set()
    for plan in ir.accesses:
        for lvl in plan.levels:
            if lvl.kind != VIRTUAL and _drivable(
                lvl, ir.binds.get(lvl.rank, ())
            ):
                out.add(lvl.rank)
    return out


def _emit_leaf(em: _Emitter, ir: LoopNestIR, depths: Dict[int, int]) -> None:
    counter = [0]
    guards: List[str] = []
    value = _emit_expr(ir.einsum.expr, depths, counter, guards)
    for g in guards:
        em.emit(f"if {g} is None:")
        em.indent += 1
        em.emit("continue")
        em.indent -= 1
    point = ", ".join(_expr_code(e) for e in ir.output.indices)
    overwrite = "True" if ir.einsum.is_take else "False"
    em.emit(f"value = {value}")
    em.emit("if value is None:")
    em.indent += 1
    em.emit("continue")
    em.indent -= 1
    em.emit(f"rt.reduce_into(out, ({point},), value, opset, {overwrite})")


def _emit_expr(expr: Expr, depths, counter, guards) -> str:
    """Python expression computing the leaf value (None = ineffectual)."""
    if isinstance(expr, Access):
        i = counter[0]
        counter[0] += 1
        return f"rt.scalar(n{i}_{depths[i]})"
    if isinstance(expr, Mul):
        parts = [_emit_expr(f, depths, counter, guards) for f in expr.factors]
        names = []
        for idx, part in enumerate(parts):
            names.append(part)
        # Build a guarded fold: None if any factor is None.
        inner = parts[0]
        for p in parts[1:]:
            inner = f"_mul(opset, {inner}, {p})"
        return inner
    if isinstance(expr, Add):
        left = _emit_expr(expr.left, depths, counter, guards)
        right = _emit_expr(expr.right, depths, counter, guards)
        op = "_sub" if expr.negate else "_add"
        return f"{op}(opset, {left}, {right})"
    if isinstance(expr, Take):
        args = []
        for a in expr.args:
            i = counter[0]
            counter[0] += 1
            args.append(f"rt.scalar(n{i}_{depths[i]})")
        return f"_take([{', '.join(args)}], {expr.which})"
    raise CodegenError(f"cannot generate code for {expr!r}")


_PRELUDE = '''"""TeAAL-generated simulator module."""

from repro.fibertree.fiber import Fiber
from repro.fibertree.tensor import Tensor
import repro.ir.codegen_runtime as rt


def _mul(opset, a, b):
    if a is None or b is None:
        return None
    return opset.mul(a, b)


def _add(opset, a, b):
    if a is None:
        return b
    if b is None:
        return a
    return opset.add(a, b)


def _sub(opset, a, b):
    if a is None:
        return None
    if b is None:
        return a
    return opset.sub(a, b)


def _take(args, which):
    if any(a is None for a in args):
        return None
    return args[which]


'''


def generate_module(irs, name: str = "generated") -> str:
    """Full module source: prelude + one function per Einsum + a driver."""
    parts = [_PRELUDE]
    names = []
    for ir in irs:
        fname = f"compute_{ir.name.lower()}"
        names.append((fname, ir.name))
        parts.append(generate_source(ir, fname))
        parts.append("\n")
    parts.append("def run_cascade(tensors, opset, shapes, prepare):\n")
    parts.append('    """Run every Einsum in cascade order.\n\n'
                 "    ``prepare(name, env)`` returns the prepared tensors "
                 'for one Einsum.\n    """\n')
    parts.append("    env = dict(tensors)\n")
    for fname, out in names:
        parts.append(
            f"    env[{out!r}] = {fname}(prepare({out!r}, env), opset, "
            "shapes).prune_empty()\n"
        )
    parts.append("    return env\n")
    return "".join(parts)


def compile_ir(ir: LoopNestIR, func_name: str = "kernel"):
    """Compile one Einsum's generated source and return the function."""
    source = _PRELUDE + generate_source(ir, func_name)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<teaal:{ir.name}>", "exec"), namespace)
    return namespace[func_name], source
