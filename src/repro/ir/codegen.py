"""Code generation: lower loop-nest IR to standalone Python source.

This is the "simulator generator" output stage in the spirit of the paper's
HiFiber backend (section 4.3): the IR becomes a plain Python function whose
nested loops co-iterate fibertrees through a small runtime
(:mod:`repro.ir.codegen_runtime`).  The generated source is readable,
importable, and produces exactly the same outputs as the interpreting
executor (the differential suite in ``tests/ir/test_codegen_differential``
enforces this over every registered accelerator).

Supported: plain/flat/upper levels, eager shape and occupancy splits,
occupancy *followers* (virtual levels with runtime partition windows),
flattening, inferred swizzles, lookups (including chunk search), affine
projection, intersect/union/single co-iteration, take()/Mul/Add leaves,
dense iteration for undriven ranks.  Every mapping the interpreter
supports also compiles; the one remaining restriction is an Einsum that
reads the same tensor twice with *different* preprocessing (the generated
kernel receives one prepared tensor per name).

Two flavors of kernel are generated from the same IR:

* the **fast** kernel ``kernel(tensors, opset, shapes)`` — pure
  computation, no instrumentation; and
* the **traced** kernel ``kernel(tensors, opset, shapes, sink)`` — emits
  the exact trace-event stream (reads, writes, intersections, computes,
  in the same order) as the interpreter, so the component models price
  both backends identically.

Backend selection lives in :mod:`repro.model.backend`: ``evaluate(...,
backend="compiled"|"interpreter"|"auto")`` and ``evaluate_many(spec,
workloads, ...)`` pick kernels out of a process-wide compile cache.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..einsum.ast import Access, Add, Expr, Mul, Take
from .nodes import FLAT, FLAT_UPPER, PLAIN, UPPER, VIRTUAL, LoopNestIR


class CodegenError(NotImplementedError):
    pass


class _Emitter:
    def __init__(self):
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.indent + text if text else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _expr_code(e) -> str:
    """Python expression computing an IndexExpr from bound loop variables."""
    parts = [f"v_{v}" for v in e.vars]
    if e.const or not parts:
        parts.append(str(e.const))
    return " + ".join(parts)


def _coord_code(lvl) -> str:
    if lvl.kind == FLAT or len(lvl.exprs) > 1:
        return "(" + ", ".join(_expr_code(e) for e in lvl.exprs) + ")"
    return _expr_code(lvl.exprs[0])


def _point_code(exprs) -> str:
    parts = [_expr_code(e) for e in exprs]
    if not parts:
        return "()"
    return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"


def _physical_below(plan, depth, of):
    for lvl in plan.levels[depth + 1:]:
        if lvl.of == of and lvl.kind in (PLAIN, FLAT):
            return lvl
    return None


def _drivable(lvl, binds) -> bool:
    if lvl.kind == VIRTUAL:
        return False
    if lvl.kind in (UPPER, FLAT_UPPER):
        return True
    if lvl.kind == FLAT:
        return tuple(v for e in lvl.exprs for v in e.vars) == binds
    expr = lvl.exprs[0]
    if expr.is_var:
        return binds == expr.vars
    return len(binds) == 1 and binds[0] in expr.vars and expr.vars


def _statically_driven(ir) -> set:
    out = set()
    for plan in ir.accesses:
        for lvl in plan.levels:
            if lvl.kind != VIRTUAL and _drivable(
                lvl, ir.binds.get(lvl.rank, ())
            ):
                out.add(lvl.rank)
    return out


def _existential_ranks(ir: LoopNestIR) -> Set[str]:
    """Ranks that only gate a take() output: the first match suffices."""
    out: Set[str] = set()
    if ir.einsum.is_take:
        out_vars = set(ir.einsum.output.index_vars)
        kept = set(ir.einsum.expr.args[ir.einsum.expr.which].index_vars)
        for rank in ir.loop_ranks:
            binds = set(ir.binds.get(rank, ()))
            if binds and not (binds & (out_vars | kept)):
                out.add(rank)
    return out


class _Generator:
    """Emits one kernel (fast or traced) for one lowered Einsum."""

    def __init__(self, ir: LoopNestIR, func_name: str, traced: bool):
        self.ir = ir
        self.func_name = func_name
        self.traced = traced
        self.em = _Emitter()
        self.existential = _existential_ranks(ir)
        self.stamp_ranks = (set(ir.time_ranks) | set(ir.space_ranks)) \
            if traced else set()
        self.n_ranks = len(ir.loop_ranks)
        self._tmp_count = 0

    # ------------------------------------------------------------------
    def generate(self) -> str:
        ir, em = self.ir, self.em
        preps: Dict[str, tuple] = {}
        for plan in ir.accesses:
            prep = tuple(plan.prep)
            if preps.setdefault(plan.tensor, prep) != prep:
                raise CodegenError(
                    f"tensor {plan.tensor} is accessed twice with different "
                    "preprocessing; use the interpreter"
                )

        args = "tensors, opset, shapes, sink" if self.traced \
            else "tensors, opset, shapes"
        em.emit(f"def {self.func_name}({args}):")
        em.indent += 1
        flavor = "traced" if self.traced else "fast"
        em.emit(f'"""Generated ({flavor}) from: {ir.einsum}"""')
        # Cursor roots, one per access (duplicate tensors share a root).
        for i, plan in enumerate(ir.accesses):
            em.emit(f"n{i}_0 = tensors[{plan.tensor!r}].root")
            if self.traced:
                em.emit(f"h{i}_0 = ()")
        em.emit("out = Fiber()")
        if self.traced:
            em.emit("ctx = []")
            for rank in sorted(self.stamp_ranks):
                em.emit(f"st_{rank} = 0")
        if self.existential:
            em.emit("wr_0 = False")
        depths = {i: 0 for i in range(len(ir.accesses))}
        # Literal-index levels (e.g. the FFT's P[0, k0, n1, 0]) are bound
        # before any loop runs; advance those cursors up front.
        self._lookups(level=-1, depths=depths)
        self._rank(0, depths, wins={}, guarded=set())
        em.emit(
            "return Tensor("
            f"{ir.output.tensor!r}, {ir.output.storage_ranks!r}, out, "
            f"[shapes.get(r) for r in {ir.output.storage_ranks!r}])"
        )
        em.indent -= 1
        return em.source()

    # ------------------------------------------------------------------
    def _dead_guard(self, depths: Dict[int, int], guarded: Set[str]) -> int:
        """Prune subtrees where a conjunctive access has gone empty.

        Mirrors the interpreter's participant check: an empty conjunctive
        cursor makes the whole subtree ineffectual, so neither outputs nor
        trace events are produced below it.  Returns the indent to close.
        """
        names = []
        for i, plan in enumerate(self.ir.accesses):
            name = f"n{i}_{depths[i]}"
            if plan.conjunctive and depths[i] > 0 and name not in guarded:
                names.append(name)
                guarded.add(name)
        if not names:
            return 0
        cond = " or ".join(f"{n} is None" for n in names)
        self.em.emit(f"if not ({cond}):")
        self.em.indent += 1
        return 1

    # ------------------------------------------------------------------
    def _rank(self, level: int, depths: Dict[int, int],
              wins: Dict[str, str], guarded: Set[str]) -> None:
        ir, em = self.ir, self.em
        if level == self.n_ranks:
            self._leaf(depths)
            return
        rank = ir.loop_ranks[level]
        binds = ir.binds.get(rank, ())

        guarded = set(guarded)
        close = self._dead_guard(depths, guarded)

        drivers: List[Tuple[int, object]] = []
        virtual: List[int] = []
        for i, plan in enumerate(ir.accesses):
            d = depths[i]
            if d < len(plan.levels) and plan.levels[d].rank == rank:
                lvl = plan.levels[d]
                if lvl.kind == VIRTUAL:
                    virtual.append(i)
                elif _drivable(lvl, binds):
                    drivers.append((i, lvl))

        new_depths = dict(depths)
        if not drivers:
            if virtual or rank in _statically_driven(ir):
                raise CodegenError(
                    f"rank {rank} is driven only dynamically; unsupported"
                )
            self._dense(level, rank, binds, new_depths, wins, guarded)
            em.indent -= close
            return

        fiber_exprs = []
        for i, lvl in drivers:
            base = f"n{i}_{depths[i]}"
            if lvl.kind == PLAIN and not lvl.exprs[0].is_var:
                e = lvl.exprs[0]
                bound = [f"v_{v}" for v in e.vars if v != binds[0]]
                offset = " + ".join(bound + [str(e.const)]) or "0"
                origin = ir.origin.get(rank, rank)
                fiber_exprs.append(
                    f"rt.project({base}, -({offset}), shapes[{origin!r}])"
                )
            elif lvl.kind == PLAIN and lvl.exprs[0].is_var and lvl.of in wins:
                # Occupancy follower: restrict to the leader's partition
                # window established at the enclosing split-upper rank.
                fiber_exprs.append(f"rt.window({base}, {wins[lvl.of]})")
            else:
                fiber_exprs.append(base)
            new_depths[i] = depths[i] + 1
        for i in virtual:
            new_depths[i] = depths[i] + 1

        mode = ir.modes.get(rank, "single")
        trace_arg = ""
        if self.traced:
            if len(drivers) == 1:
                i, lvl = drivers[0]
                of = lvl.of or lvl.rank
                trace_arg = (
                    f", trace=(sink, {ir.accesses[i].tensor!r}, {of!r}, "
                    f"h{i}_{depths[i]}, ctx)"
                )
            else:
                infos = ", ".join(
                    f"({ir.accesses[i].tensor!r}, {(lvl.of or lvl.rank)!r}, "
                    f"h{i}_{depths[i]})"
                    for i, lvl in drivers
                )
                trace_arg = f", trace=(sink, {rank!r}, [{infos}], ctx)"
        if len(drivers) == 1:
            call = f"rt.iterate({fiber_exprs[0]}{trace_arg})"
        elif mode == "union":
            call = f"rt.coiterate_union({', '.join(fiber_exprs)}{trace_arg})"
        else:
            call = (
                f"rt.coiterate_intersect({', '.join(fiber_exprs)}{trace_arg})"
            )

        payloads = ", ".join(f"p{i}" for i, _ in drivers)
        if rank in self.stamp_ranks:
            em.emit(f"for po_{rank}, (c_{rank}, [{payloads}]) "
                    f"in enumerate({call}):")
        else:
            em.emit(f"for c_{rank}, [{payloads}] in {call}:")
        em.indent += 1
        if len(binds) == 1:
            em.emit(f"v_{binds[0]} = c_{rank}")
        elif len(binds) > 1:
            em.emit(f"{', '.join('v_' + v for v in binds)} = c_{rank}")
        if self.existential:
            em.emit(f"wr_{level + 1} = False")

        wins2 = dict(wins)
        for i, lvl in drivers:
            d = depths[i]
            if self.traced:
                of = lvl.of or lvl.rank
                em.emit(f"if p{i} is not None:")
                em.indent += 1
                em.emit(
                    f"sink.read({ir.accesses[i].tensor!r}, {of!r}, "
                    f"'payload', h{i}_{d} + (c_{rank},), ctx)"
                )
                em.indent -= 1
            em.emit(f"n{i}_{d + 1} = p{i}")
            if self.traced:
                em.emit(f"h{i}_{d + 1} = h{i}_{d} + (c_{rank},)")
            if lvl.kind in (UPPER, FLAT_UPPER):
                prev = wins2.get(lvl.of, "None")
                em.emit(f"w_{lvl.of} = rt.window_of(p{i}, {prev})")
                wins2[lvl.of] = f"w_{lvl.of}"
        for i in virtual:
            d = depths[i]
            em.emit(f"n{i}_{d + 1} = n{i}_{d}")
            if self.traced:
                em.emit(f"h{i}_{d + 1} = h{i}_{d}")
        if rank in self.stamp_ranks:
            style = ir.time_styles.get(rank, "pos")
            src = f"c_{rank}" if style == "coord" else f"po_{rank}"
            em.emit(f"st_{rank} = {src}")
        if self.traced:
            em.emit(f"ctx.append(({rank!r}, c_{rank}))")
        self._lookups(level, new_depths)
        self._rank(level + 1, new_depths, wins2, guarded)
        if self.traced:
            em.emit("ctx.pop()")
        self._propagate_wrote(level, rank)
        em.indent -= 1
        em.indent -= close

    # ------------------------------------------------------------------
    def _propagate_wrote(self, level: int, rank: str) -> None:
        if not self.existential:
            return
        em = self.em
        em.emit(f"if wr_{level + 1}:")
        em.indent += 1
        em.emit(f"wr_{level} = True")
        if rank in self.existential:
            em.emit("break")
        em.indent -= 1

    # ------------------------------------------------------------------
    def _dense(self, level: int, rank: str, binds, depths: Dict[int, int],
               wins: Dict[str, str], guarded: Set[str]) -> None:
        ir, em = self.ir, self.em
        if len(binds) != 1:
            raise CodegenError(f"cannot iterate rank {rank} densely")
        origin = ir.origin.get(rank, rank)
        var = binds[0]
        em.emit(f"for v_{var} in range(shapes[{origin!r}]):")
        em.indent += 1
        if self.existential:
            em.emit(f"wr_{level + 1} = False")
        if rank in self.stamp_ranks:
            em.emit(f"st_{rank} = v_{var}")
        if self.traced:
            em.emit(f"ctx.append(({rank!r}, v_{var}))")
        self._lookups(level, depths)
        self._rank(level + 1, depths, wins, guarded)
        if self.traced:
            em.emit("ctx.pop()")
        self._propagate_wrote(level, rank)
        em.indent -= 1

    # ------------------------------------------------------------------
    def _lookups(self, level: int, depths: Dict[int, int]) -> None:
        """Advance cursors through levels fully bound after this rank."""
        ir, em = self.ir, self.em
        bound_vars = set()
        for r in ir.loop_ranks[: level + 1]:
            bound_vars.update(ir.binds.get(r, ()))
        for i, plan in enumerate(ir.accesses):
            d = depths[i]
            while d < len(plan.levels):
                lvl = plan.levels[d]
                if lvl.kind == VIRTUAL:
                    break  # virtual levels advance only at their loop rank
                later_rank = lvl.rank in ir.loop_ranks[level + 1:]
                of = lvl.of or lvl.rank
                if lvl.kind in (UPPER, FLAT_UPPER):
                    below = _physical_below(plan, d, lvl.of)
                    if below is None or any(
                        set(e.vars) - bound_vars for e in below.exprs
                    ) or later_rank and _drivable(
                        lvl, ir.binds.get(lvl.rank, ())
                    ):
                        break
                    target = _coord_code(below)
                    if self.traced:
                        em.emit(
                            f"n{i}_{d + 1}, h{i}_{d + 1} = rt.lookup_chunk_t("
                            f"n{i}_{d}, {target}, h{i}_{d}, sink, "
                            f"{plan.tensor!r}, {of!r}, ctx)"
                        )
                    else:
                        em.emit(
                            f"n{i}_{d + 1} = rt.lookup_chunk(n{i}_{d}, "
                            f"{target})"
                        )
                    d += 1
                    depths[i] = d
                    continue
                unbound = any(set(e.vars) - bound_vars for e in lvl.exprs)
                if unbound:
                    break
                if later_rank and _drivable(lvl, ir.binds.get(lvl.rank, ())):
                    break  # it will drive its own loop
                if self.traced:
                    em.emit(
                        f"n{i}_{d + 1}, h{i}_{d + 1} = rt.lookup_t("
                        f"n{i}_{d}, {_coord_code(lvl)}, h{i}_{d}, sink, "
                        f"{plan.tensor!r}, {of!r}, ctx)"
                    )
                else:
                    em.emit(
                        f"n{i}_{d + 1} = rt.lookup(n{i}_{d}, "
                        f"{_coord_code(lvl)})"
                    )
                d += 1
                depths[i] = d

    # ------------------------------------------------------------------
    def _leaf(self, depths: Dict[int, int]) -> None:
        if self.traced:
            self._leaf_traced(depths)
        else:
            self._leaf_fast(depths)

    def _leaf_fast(self, depths: Dict[int, int]) -> None:
        ir, em = self.ir, self.em
        counter = [0]
        value = _fast_expr(ir.einsum.expr, depths, counter)
        point = _point_code(ir.output.indices)
        overwrite = "True" if ir.einsum.is_take else "False"
        em.emit(f"value = {value}")
        em.emit("if value is not None:")
        em.indent += 1
        em.emit(f"rt.reduce_into(out, {point}, value, opset, {overwrite})")
        if self.existential:
            em.emit(f"wr_{self.n_ranks} = True")
        em.indent -= 1

    def _leaf_traced(self, depths: Dict[int, int]) -> None:
        ir, em = self.ir, self.em
        em.emit("mu = 0")
        em.emit("ad = 0")
        counter = [0]
        value = self._traced_expr(ir.einsum.expr, depths, counter)
        point = _point_code(ir.output.indices)
        overwrite = "True" if ir.einsum.is_take else "False"
        em.emit(f"if {value} is not None:")
        em.indent += 1
        em.emit(
            f"ad += rt.reduce_into(out, {point}, {value}, opset, {overwrite})"
        )
        ts = "(" + "".join(f"st_{r}, " for r in ir.time_ranks) + ")"
        ss = "(" + "".join(f"st_{r}, " for r in ir.space_ranks) + ")"
        em.emit("if mu:")
        em.indent += 1
        em.emit(f"sink.compute('mul', mu, {ts}, {ss})")
        em.indent -= 1
        em.emit("if ad:")
        em.indent += 1
        em.emit(f"sink.compute('add', ad, {ts}, {ss})")
        em.indent -= 1
        em.emit("if not mu and not ad:")
        em.indent += 1
        em.emit(f"sink.compute('copy', 1, {ts}, {ss})")
        em.indent -= 1
        out_rank = (ir.output.storage_ranks[-1]
                    if ir.output.storage_ranks else "root")
        em.emit(
            f"sink.write({ir.output.tensor!r}, {out_rank!r}, 'elem', "
            f"{point}, ctx)"
        )
        if self.existential:
            em.emit(f"wr_{self.n_ranks} = True")
        em.indent -= 1

    # ------------------------------------------------------------------
    def _tmp(self) -> str:
        self._tmp_count += 1
        return f"t{self._tmp_count}"

    def _traced_expr(self, expr: Expr, depths, counter) -> str:
        """Emit statements computing the leaf value with exact op counts.

        Mirrors the interpreter's ``_evaluate``: sub-expressions are always
        evaluated (their op counts accumulate into ``mu``/``ad``), but a
        combining operation is only counted when it actually executes.
        """
        em = self.em
        if isinstance(expr, Access):
            i = counter[0]
            counter[0] += 1
            v = self._tmp()
            em.emit(f"{v} = rt.scalar(n{i}_{depths[i]})")
            return v
        if isinstance(expr, Mul):
            parts = [self._traced_expr(f, depths, counter)
                     for f in expr.factors]
            v = self._tmp()
            cond = " or ".join(f"{p} is None" for p in parts)
            em.emit(f"if {cond}:")
            em.indent += 1
            em.emit(f"{v} = None")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            folded = parts[0]
            for p in parts[1:]:
                folded = f"opset.mul({folded}, {p})"
            em.emit(f"{v} = {folded}")
            em.emit(f"mu += {len(parts) - 1}")
            em.indent -= 1
            return v
        if isinstance(expr, Add):
            left = self._traced_expr(expr.left, depths, counter)
            right = self._traced_expr(expr.right, depths, counter)
            v = self._tmp()
            em.emit(f"if {left} is None and {right} is None:")
            em.indent += 1
            em.emit(f"{v} = None")
            em.indent -= 1
            em.emit(f"elif {right} is None:")
            em.indent += 1
            em.emit(f"{v} = {left}")
            em.indent -= 1
            em.emit(f"elif {left} is None:")
            em.indent += 1
            em.emit(f"{v} = {'None' if expr.negate else right}")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            op = "sub" if expr.negate else "add"
            em.emit(f"{v} = opset.{op}({left}, {right})")
            em.emit("ad += 1")
            em.indent -= 1
            return v
        if isinstance(expr, Take):
            args = []
            for _ in expr.args:
                i = counter[0]
                counter[0] += 1
                a = self._tmp()
                em.emit(f"{a} = rt.scalar(n{i}_{depths[i]})")
                args.append(a)
            v = self._tmp()
            cond = " or ".join(f"{a} is None" for a in args)
            em.emit(f"if {cond}:")
            em.indent += 1
            em.emit(f"{v} = None")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            em.emit(f"{v} = {args[expr.which]}")
            em.indent -= 1
            return v
        raise CodegenError(f"cannot generate code for {expr!r}")


def _fast_expr(expr: Expr, depths, counter) -> str:
    """Python expression computing the leaf value (None = ineffectual)."""
    if isinstance(expr, Access):
        i = counter[0]
        counter[0] += 1
        return f"rt.scalar(n{i}_{depths[i]})"
    if isinstance(expr, Mul):
        parts = [_fast_expr(f, depths, counter) for f in expr.factors]
        inner = parts[0]
        for p in parts[1:]:
            inner = f"_mul(opset, {inner}, {p})"
        return inner
    if isinstance(expr, Add):
        left = _fast_expr(expr.left, depths, counter)
        right = _fast_expr(expr.right, depths, counter)
        op = "_sub" if expr.negate else "_add"
        return f"{op}(opset, {left}, {right})"
    if isinstance(expr, Take):
        args = []
        for _ in expr.args:
            i = counter[0]
            counter[0] += 1
            args.append(f"rt.scalar(n{i}_{depths[i]})")
        return f"_take([{', '.join(args)}], {expr.which})"
    raise CodegenError(f"cannot generate code for {expr!r}")


def generate_source(ir: LoopNestIR, func_name: str = "kernel",
                    traced: bool = False) -> str:
    """Generate Python source for one lowered Einsum.

    The generated function has the signature ``kernel(tensors, opset,
    shapes)`` (or ``..., sink`` when ``traced``) where ``tensors`` maps
    names to *prepared* tensors (rank-order swizzle and prep steps already
    applied, e.g. via :func:`repro.model.executor.prepare_tensor`) and
    returns the output :class:`~repro.fibertree.tensor.Tensor`.
    """
    return _Generator(ir, func_name, traced).generate()


_PRELUDE = '''"""TeAAL-generated simulator module."""

from bisect import bisect_left as _bl

from repro.fibertree.fiber import Fiber
from repro.fibertree.tensor import Tensor
import repro.ir.codegen_runtime as rt


def _mul(opset, a, b):
    if a is None or b is None:
        return None
    return opset.mul(a, b)


def _add(opset, a, b):
    if a is None:
        return b
    if b is None:
        return a
    return opset.add(a, b)


def _sub(opset, a, b):
    if a is None:
        return None
    if b is None:
        return a
    return opset.sub(a, b)


def _take(args, which):
    if any(a is None for a in args):
        return None
    return args[which]


'''


def generate_module(irs, name: str = "generated") -> str:
    """Full module source: prelude + one function per Einsum + a driver."""
    parts = [_PRELUDE]
    names = []
    for ir in irs:
        fname = f"compute_{ir.name.lower()}"
        names.append((fname, ir.name))
        parts.append(generate_source(ir, fname))
        parts.append("\n")
    parts.append("def run_cascade(tensors, opset, shapes, prepare):\n")
    parts.append('    """Run every Einsum in cascade order.\n\n'
                 "    ``prepare(name, env)`` returns the prepared tensors "
                 'for one Einsum.\n    """\n')
    parts.append("    env = dict(tensors)\n")
    for fname, out in names:
        parts.append(
            f"    env[{out!r}] = {fname}(prepare({out!r}, env), opset, "
            "shapes).prune_empty()\n"
        )
    parts.append("    return env\n")
    return "".join(parts)


#: Kernel flavors: object-cursor kernels ("fast"/"traced") walk boxed
#: fibers; arena-native kernels ("flat"/"counted"/"fused") walk FlatArena
#: spans (see :mod:`repro.ir.codegen_flat`).  "fused" inlines the
#: buffet/cache component state machines into the arena loops.
KERNEL_FLAVORS = ("fast", "traced", "flat", "counted", "fused", "vector")


def compile_ir(ir: LoopNestIR, func_name: str = "kernel",
               traced: bool = False, flavor: str = None):
    """Compile one Einsum's generated source and return the function.

    ``flavor`` selects the kernel variant (see :data:`KERNEL_FLAVORS`);
    when omitted, ``traced`` picks between the two object-cursor flavors
    for backward compatibility.
    """
    if flavor is None:
        flavor = "traced" if traced else "fast"
    if flavor in ("fast", "traced"):
        body = generate_source(ir, func_name, traced=(flavor == "traced"))
    elif flavor in ("flat", "counted", "fused", "vector"):
        from .codegen_flat import generate_flat_source

        body = generate_flat_source(ir, func_name,
                                    counted=(flavor == "counted"),
                                    fused=(flavor == "fused"),
                                    vector=(flavor == "vector"))
    else:
        raise ValueError(
            f"unknown kernel flavor {flavor!r}; known: {KERNEL_FLAVORS}"
        )
    source = _PRELUDE + body
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<teaal:{ir.name}:{flavor}>", "exec"), namespace)
    return namespace[func_name], source
