"""Loop-nest IR: the imperative-style intermediate representation TeAAL
lowers mapped Einsums onto (paper section 4.3, Figure 6).

One :class:`LoopNestIR` describes how a single Einsum executes:

* ``loop_ranks`` — the serialized iteration order (after partitioning);
* ``binds`` — which index variables each loop rank's coordinate binds
  (split upper ranks bind nothing; flattened ranks bind several);
* ``accesses`` — per tensor access, the transformed fibertree level
  structure plus the preprocessing (prep) steps that produce it;
* ``output`` — where results are inserted and which swizzles are inferred;
* ``modes`` — per-rank co-iteration mode (intersect / union / single);
* spacetime — which ranks map to space (parallel PEs) vs time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..einsum.ast import Access, Einsum, IndexExpr

# Level kinds
PLAIN = "plain"  # a physical level carrying an index expression
UPPER = "upper"  # a physical chunk level created by a split
FLAT = "flat"  # a physical level with tuple coordinates (flattened)
FLAT_UPPER = "flat_upper"  # chunk level above a flattened rank
VIRTUAL = "virtual"  # a follower's placeholder at a split-upper rank


@dataclass(frozen=True)
class Level:
    """One fibertree level of a transformed tensor, aligned to a loop rank."""

    rank: str  # loop-rank name this level corresponds to
    kind: str = PLAIN
    exprs: Tuple[IndexExpr, ...] = ()  # PLAIN: 1 expr; FLAT: one per component
    of: Optional[str] = None  # original rank for UPPER/VIRTUAL levels

    @property
    def is_physical(self) -> bool:
        return self.kind != VIRTUAL


@dataclass(frozen=True)
class PrepStep:
    """A content-preserving transformation applied before the loop nest."""

    kind: str  # 'swizzle' | 'partition_shape' | 'partition_occupancy' | 'flatten'
    rank: Optional[str] = None  # target rank (splits) or None
    ranks: Tuple[str, ...] = ()  # swizzle order / flatten group
    sizes: Tuple[int, ...] = ()  # split sizes, top-down

    def describe(self) -> str:
        if self.kind == "swizzle":
            return f"swizzle to [{', '.join(self.ranks)}]"
        if self.kind == "flatten":
            return f"flatten ({', '.join(self.ranks)})"
        sizes = ", ".join(str(s) for s in self.sizes)
        style = "shape" if self.kind == "partition_shape" else "occupancy"
        return f"partition {self.rank} by {style} [{sizes}]"


@dataclass
class AccessPlan:
    """Execution plan for one tensor access within the loop nest."""

    access: Access
    levels: List[Level]
    prep: List[PrepStep] = field(default_factory=list)
    conjunctive: bool = True  # empty access kills the point (Mul/Take context)
    is_intermediate: bool = False  # produced by an earlier Einsum in the cascade

    @property
    def tensor(self) -> str:
        return self.access.tensor

    def physical_rank_order(self) -> List[str]:
        return [lvl.rank for lvl in self.levels if lvl.is_physical]


@dataclass
class OutputPlan:
    """How the Einsum's output is assembled and stored."""

    tensor: str
    indices: Tuple[IndexExpr, ...]  # per declared output rank, in storage order
    storage_ranks: List[str]  # the mapping's rank-order for the tensor
    build_ranks: List[str] = field(default_factory=list)  # order produced by loop
    needs_producer_swizzle: bool = False  # build order != storage order


@dataclass
class LoopNestIR:
    """The lowered form of one mapped Einsum."""

    einsum: Einsum
    loop_ranks: List[str]
    binds: Dict[str, Tuple[str, ...]]
    accesses: List[AccessPlan]
    output: OutputPlan
    modes: Dict[str, str]  # loop rank -> 'intersect' | 'union' | 'single'
    space_ranks: List[str] = field(default_factory=list)
    time_ranks: List[str] = field(default_factory=list)
    time_styles: Dict[str, str] = field(default_factory=dict)  # rank -> pos|coord
    rank_shapes: Dict[str, Optional[int]] = field(default_factory=dict)
    # Map loop rank -> original (declared) rank it derives from, used for
    # follower windows and shape lookups.
    origin: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.einsum.name

    def plan_for(self, tensor: str) -> AccessPlan:
        for plan in self.accesses:
            if plan.tensor == tensor:
                return plan
        raise KeyError(f"no access plan for tensor {tensor!r}")
